package dispatch

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/netem"
)

// testLog is a concurrency-safe log sink that can outlive the test
// body without tripping testing.T's post-test logging panic.
type testLog struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (l *testLog) logf(format string, args ...interface{}) {
	l.mu.Lock()
	fmt.Fprintf(&l.buf, format+"\n", args...)
	l.mu.Unlock()
}

func (l *testLog) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.String()
}

// stubRunner computes a deterministic state from everything the worker
// received, optionally sleeping first (to play the straggler).
func stubRunner(delay time.Duration) Runner {
	return func(ctx context.Context, spec, parent []byte, files []string, decoders int) ([]byte, error) {
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return stubState(spec, parent, files), nil
	}
}

func stubState(spec, parent []byte, files []string) []byte {
	h := sha256.New()
	h.Write(spec)
	h.Write(parent)
	for _, f := range files {
		b, _ := os.ReadFile(f)
		h.Write(b)
	}
	return append([]byte("state:"), h.Sum(nil)...)
}

// startWorker serves w on a loopback listener and returns its address.
func startWorker(t *testing.T, w *Worker) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go w.Serve(lis)
	t.Cleanup(w.Drain)
	return lis.Addr().String()
}

// makeTasks writes n small trace files and builds one task per file.
// expected maps task ID to the state a faithful worker must return.
func makeTasks(t *testing.T, n int) (tasks []Task, expected map[int][]byte) {
	t.Helper()
	dir := t.TempDir()
	spec := json.RawMessage(`{"kind":"stub"}`)
	expected = make(map[int][]byte)
	for i := 0; i < n; i++ {
		path := filepath.Join(dir, fmt.Sprintf("piece-%d.trace", i))
		content := bytes.Repeat([]byte(fmt.Sprintf("op %d;", i)), 200)
		if err := os.WriteFile(path, content, 0o600); err != nil {
			t.Fatal(err)
		}
		tasks = append(tasks, Task{ID: i, Spec: spec, Files: []string{path}})
		h := sha256.New()
		h.Write(spec)
		h.Write(content)
		expected[i] = append([]byte("state:"), h.Sum(nil)...)
	}
	return tasks, expected
}

// fastCfg is a Config tuned for subsecond test runs.
func fastCfg(lg *testLog, addrs ...string) Config {
	return Config{
		Addrs:             addrs,
		DialTimeout:       2 * time.Second,
		AssignTimeout:     5 * time.Second,
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  150 * time.Millisecond,
		Backoff:           NewBackoff(time.Millisecond, 20*time.Millisecond, 0, 1),
		Logf:              lg.logf,
	}
}

func checkResults(t *testing.T, results []Result, expected map[int][]byte) {
	t.Helper()
	if len(results) != len(expected) {
		t.Fatalf("got %d results, want %d", len(results), len(expected))
	}
	for _, res := range results {
		want, ok := expected[res.TaskID]
		if !ok {
			t.Fatalf("result for unknown task %d", res.TaskID)
		}
		if !bytes.Equal(res.State, want) {
			t.Fatalf("task %d state mismatch", res.TaskID)
		}
	}
}

func TestDispatchHappyPath(t *testing.T) {
	lg := &testLog{}
	a1 := startWorker(t, &Worker{Runner: stubRunner(0), Logf: lg.logf})
	a2 := startWorker(t, &Worker{Runner: stubRunner(0), Logf: lg.logf})
	tasks, expected := makeTasks(t, 5)
	results, stats, err := Run(context.Background(), fastCfg(lg, a1, a2), tasks)
	if err != nil {
		t.Fatalf("Run: %v\n%s", err, lg)
	}
	checkResults(t, results, expected)
	if stats.Completed != 5 || stats.Dispatched < 5 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestDispatchCrashMidStreamRetries(t *testing.T) {
	lg := &testLog{}
	// The first assignment streams half its result then "dies" (the
	// connection is torn down; the process survives so the retry has a
	// worker to land on — real process death is exercised by dist-smoke).
	w := &Worker{
		Runner:   stubRunner(0),
		Logf:     lg.logf,
		Exit:     func(int) {},
		FaultFor: func(seq int) Fault { return map[int]Fault{1: FaultCrash}[seq] },
	}
	addr := startWorker(t, w)
	tasks, expected := makeTasks(t, 2)
	results, stats, err := Run(context.Background(), fastCfg(lg, addr), tasks)
	if err != nil {
		t.Fatalf("Run: %v\n%s", err, lg)
	}
	checkResults(t, results, expected)
	if stats.Retries == 0 || stats.Failures == 0 {
		t.Fatalf("crash did not register as a retried failure: %+v\n%s", stats, lg)
	}
	if !strings.Contains(lg.String(), "re-dispatching") {
		t.Fatalf("no re-dispatch logged:\n%s", lg)
	}
}

func TestDispatchHungWorkerWatchdog(t *testing.T) {
	lg := &testLog{}
	// First assignment hangs: no heartbeats, connection open. The
	// heartbeat watchdog must declare it dead and re-dispatch.
	w := &Worker{
		Runner:   stubRunner(0),
		Logf:     lg.logf,
		FaultFor: func(seq int) Fault { return map[int]Fault{1: FaultHang}[seq] },
	}
	addr := startWorker(t, w)
	tasks, expected := makeTasks(t, 2)
	start := time.Now()
	results, stats, err := Run(context.Background(), fastCfg(lg, addr), tasks)
	if err != nil {
		t.Fatalf("Run: %v\n%s", err, lg)
	}
	checkResults(t, results, expected)
	if stats.Failures == 0 {
		t.Fatalf("hang never failed an attempt: %+v\n%s", stats, lg)
	}
	if !strings.Contains(lg.String(), "heartbeat: worker silent") {
		t.Fatalf("watchdog not the failure cause:\n%s", lg)
	}
	// The watchdog, not the 5s assignment deadline, must have fired.
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("recovery took %v; watchdog apparently never fired", elapsed)
	}
}

func TestDispatchCorruptStateRejected(t *testing.T) {
	lg := &testLog{}
	w := &Worker{
		Runner:   stubRunner(0),
		Logf:     lg.logf,
		FaultFor: func(seq int) Fault { return map[int]Fault{1: FaultCorrupt}[seq] },
	}
	addr := startWorker(t, w)
	tasks, expected := makeTasks(t, 2)
	cfg := fastCfg(lg, addr)
	cfg.Validate = func(task Task, state []byte) error {
		if !bytes.Equal(state, expected[task.ID]) {
			return errors.New("state does not match expectation")
		}
		return nil
	}
	results, stats, err := Run(context.Background(), cfg, tasks)
	if err != nil {
		t.Fatalf("Run: %v\n%s", err, lg)
	}
	checkResults(t, results, expected)
	if stats.Failures == 0 {
		t.Fatalf("corrupt state was accepted: %+v\n%s", stats, lg)
	}
	if !strings.Contains(lg.String(), "state rejected") {
		t.Fatalf("rejection not logged:\n%s", lg)
	}
}

func TestDispatchAnalysisErrorReportedInBand(t *testing.T) {
	lg := &testLog{}
	var calls atomic.Int64
	runner := func(ctx context.Context, spec, parent []byte, files []string, decoders int) ([]byte, error) {
		if calls.Add(1) == 1 {
			return nil, errors.New("synthetic analysis failure")
		}
		return stubState(spec, parent, files), nil
	}
	addr := startWorker(t, &Worker{Runner: runner, Logf: lg.logf})
	tasks, expected := makeTasks(t, 2)
	results, stats, err := Run(context.Background(), fastCfg(lg, addr), tasks)
	if err != nil {
		t.Fatalf("Run: %v\n%s", err, lg)
	}
	checkResults(t, results, expected)
	if stats.Failures == 0 || !strings.Contains(lg.String(), "synthetic analysis failure") {
		t.Fatalf("in-band error not surfaced: %+v\n%s", stats, lg)
	}
}

func TestDispatchStragglerSpeculation(t *testing.T) {
	lg := &testLog{}
	fast := startWorker(t, &Worker{Runner: stubRunner(0), Logf: lg.logf})
	slow := startWorker(t, &Worker{Runner: stubRunner(2 * time.Second), Logf: lg.logf})
	tasks, expected := makeTasks(t, 4)
	cfg := fastCfg(lg, fast, slow)
	cfg.StragglerMin = 50 * time.Millisecond
	cfg.StragglerFactor = 2
	// The slow worker heartbeats fine, so only speculation (never the
	// watchdog) can rescue its piece quickly.
	start := time.Now()
	results, stats, err := Run(context.Background(), cfg, tasks)
	if err != nil {
		t.Fatalf("Run: %v\n%s", err, lg)
	}
	checkResults(t, results, expected)
	if stats.Speculations == 0 {
		t.Fatalf("no speculation launched: %+v\n%s", stats, lg)
	}
	if elapsed := time.Since(start); elapsed >= 2*time.Second {
		t.Fatalf("run waited %v for the straggler; speculation did not win", elapsed)
	}
}

func TestDispatchPoolDeathReturnsPartial(t *testing.T) {
	lg := &testLog{}
	// A dead endpoint: reserve a port, then close it.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := lis.Addr().String()
	lis.Close()
	tasks, _ := makeTasks(t, 3)
	cfg := fastCfg(lg, deadAddr)
	cfg.MaxWorkerFailures = 2
	results, stats, err := Run(context.Background(), cfg, tasks)
	if err != nil {
		t.Fatalf("pool death must not be a Run error: %v", err)
	}
	if len(results) != 0 || stats.Completed != 0 {
		t.Fatalf("results from a dead pool: %+v", stats)
	}
	if !strings.Contains(lg.String(), "worker pool exhausted") {
		t.Fatalf("degradation not logged:\n%s", lg)
	}
}

func TestDispatchNoAddrs(t *testing.T) {
	tasks, _ := makeTasks(t, 1)
	if _, _, err := Run(context.Background(), Config{}, tasks); err == nil {
		t.Fatal("Run with no addresses must error")
	}
}

func TestDispatchNetemCutMidAssignmentRetries(t *testing.T) {
	lg := &testLog{}
	addr := startWorker(t, &Worker{Runner: stubRunner(0), Logf: lg.logf})
	tasks, expected := makeTasks(t, 2)
	cfg := fastCfg(lg, addr)
	// First dial: the link dies after 600 bytes — mid file-transfer.
	// Later dials are merely slow and jittery.
	var dials atomic.Int64
	cfg.Dial = func(ctx context.Context, a string) (net.Conn, error) {
		d := net.Dialer{Timeout: time.Second}
		conn, err := d.DialContext(ctx, "tcp", a)
		if err != nil {
			return nil, err
		}
		if dials.Add(1) == 1 {
			return netem.WrapConn(conn, netem.ConnConfig{CutAfterBytes: 600, Seed: 1}), nil
		}
		return netem.WrapConn(conn, netem.ConnConfig{
			Latency: 2 * time.Millisecond,
			Jitter:  time.Millisecond,
			Seed:    2,
		}), nil
	}
	results, stats, err := Run(context.Background(), cfg, tasks)
	if err != nil {
		t.Fatalf("Run: %v\n%s", err, lg)
	}
	checkResults(t, results, expected)
	if stats.Retries == 0 {
		t.Fatalf("severed link did not force a retry: %+v\n%s", stats, lg)
	}
	if dials.Load() < 2 {
		t.Fatalf("no reconnect after the cut (%d dials)", dials.Load())
	}
}

func TestDispatchDialBackoffTimingFakeClock(t *testing.T) {
	// Deterministic timing: every dial is refused, so the worker loop
	// must sleep Delay(0)=100ms then Delay(1)=200ms before being
	// dropped at MaxWorkerFailures=3. The fake clock only moves when
	// the loop is actually asleep, so total advanced time is exactly
	// the backoff schedule.
	lg := &testLog{}
	clk := NewFakeClock()
	cfg := Config{
		Addrs:             []string{"w1"},
		MaxWorkerFailures: 3,
		Backoff:           NewBackoff(100*time.Millisecond, time.Second, 0, 1),
		Clock:             clk,
		// Keep the straggler monitor parked on one far-future timer so
		// Waiters()>=2 isolates the worker loop's backoff sleep.
		HeartbeatInterval: time.Hour,
		Dial: func(ctx context.Context, addr string) (net.Conn, error) {
			return nil, errors.New("connection refused")
		},
		Logf: lg.logf,
	}
	tasks := []Task{{ID: 0, Spec: json.RawMessage(`{}`)}}
	done := make(chan struct{})
	var stats RunStats
	var results []Result
	var runErr error
	go func() {
		results, stats, runErr = Run(context.Background(), cfg, tasks)
		close(done)
	}()
	var advanced time.Duration
	deadline := time.After(10 * time.Second)
loop:
	for {
		select {
		case <-done:
			break loop
		case <-deadline:
			t.Fatalf("Run never finished; advanced %v\n%s", advanced, lg)
		default:
		}
		if clk.Waiters() >= 2 {
			clk.Advance(50 * time.Millisecond)
			advanced += 50 * time.Millisecond
		} else {
			time.Sleep(time.Millisecond)
		}
	}
	if runErr != nil {
		t.Fatalf("Run: %v", runErr)
	}
	if len(results) != 0 || stats.Completed != 0 {
		t.Fatalf("refused dials produced results: %+v", stats)
	}
	if want := 300 * time.Millisecond; advanced != want {
		t.Fatalf("backoff schedule consumed %v of fake time, want exactly %v\n%s", advanced, want, lg)
	}
}

func TestWorkerDrainFinishesInFlight(t *testing.T) {
	lg := &testLog{}
	release := make(chan struct{})
	started := make(chan struct{})
	runner := func(ctx context.Context, spec, parent []byte, files []string, decoders int) ([]byte, error) {
		close(started)
		<-release
		return stubState(spec, parent, files), nil
	}
	w := &Worker{Runner: runner, Logf: lg.logf}
	addr := startWorker(t, w)
	tasks, expected := makeTasks(t, 1)
	done := make(chan struct{})
	var results []Result
	var runErr error
	go func() {
		results, _, runErr = Run(context.Background(), fastCfg(lg, addr), tasks)
		close(done)
	}()
	<-started
	// Drain while the assignment is executing: it must finish and its
	// result must flush before the worker lets go.
	drained := make(chan struct{})
	go func() {
		w.Drain()
		close(drained)
	}()
	select {
	case <-drained:
		t.Fatal("Drain returned while an assignment was in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	<-drained
	<-done
	if runErr != nil {
		t.Fatalf("Run: %v\n%s", runErr, lg)
	}
	checkResults(t, results, expected)
}

func TestRecvBlobToleratesHeartbeats(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	sender, receiver := newFrameRW(a), newFrameRW(b)
	go func() {
		sender.send(frameChunk, []byte("hello "))
		sender.sendJSON(frameHeartbeat, heartbeat{ID: 1, Ops: 42})
		sender.send(frameChunk, []byte("world"))
		sender.send(frameBlobEnd, nil)
	}()
	var beats int
	blob, err := receiver.recvBlob(maxBlobLen, func([]byte) { beats++ })
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != "hello world" || beats != 1 {
		t.Fatalf("blob %q, beats %d", blob, beats)
	}
}

func TestRecvBlobTruncationIsUnexpectedEOF(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	receiver := newFrameRW(b)
	go func() {
		sender := newFrameRW(a)
		sender.send(frameChunk, []byte("partial"))
		a.Close() // cut before blob-end
	}()
	if _, err := receiver.recvBlob(maxBlobLen, nil); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("mid-blob cut: err = %v, want io.ErrUnexpectedEOF", err)
	}
}
