package dispatch

import (
	"testing"
	"time"
)

func TestBackoffExponentialSequence(t *testing.T) {
	b := NewBackoff(100*time.Millisecond, time.Second, 0, 1)
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second, // capped
		time.Second,
	}
	for i, w := range want {
		if got := b.Delay(i); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	b := NewBackoff(100*time.Millisecond, time.Second, 0.2, 7)
	for i := 0; i < 200; i++ {
		d := b.Delay(1) // 200ms nominal
		lo, hi := 160*time.Millisecond, 240*time.Millisecond
		if d < lo || d > hi {
			t.Fatalf("jittered delay %v outside [%v, %v]", d, lo, hi)
		}
	}
}

func TestBackoffJitterVaries(t *testing.T) {
	b := NewBackoff(100*time.Millisecond, time.Second, 0.2, 7)
	seen := map[time.Duration]bool{}
	for i := 0; i < 50; i++ {
		seen[b.Delay(0)] = true
	}
	if len(seen) < 10 {
		t.Fatalf("jitter produced only %d distinct delays", len(seen))
	}
}

func TestBackoffDeterministicAcrossInstances(t *testing.T) {
	a := NewBackoff(100*time.Millisecond, time.Second, 0.5, 42)
	b := NewBackoff(100*time.Millisecond, time.Second, 0.5, 42)
	for i := 0; i < 20; i++ {
		if da, db := a.Delay(i%4), b.Delay(i%4); da != db {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, da, db)
		}
	}
}
