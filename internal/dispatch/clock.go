package dispatch

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts time for the retry, heartbeat, and straggler
// machinery, so the timing policies test deterministically against a
// fake. The zero Config uses the real clock.
type Clock interface {
	Now() time.Time
	// After fires once after d, like time.After.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks for d.
	Sleep(d time.Duration)
}

// realClock is the production Clock.
type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }

// FakeClock is a manually advanced Clock for tests: Sleep and After
// block until Advance moves the clock past them. All methods are safe
// for concurrent use.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

// NewFakeClock starts a fake clock at an arbitrary fixed epoch.
func NewFakeClock() *FakeClock {
	return &FakeClock{now: time.Unix(1_000_000, 0)}
}

// Now reports the fake current time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After returns a channel that fires when the clock is advanced to or
// past now+d.
func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := &fakeWaiter{at: c.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		w.ch <- c.now
		return w.ch
	}
	c.waiters = append(c.waiters, w)
	return w.ch
}

// Sleep blocks until the clock advances past d.
func (c *FakeClock) Sleep(d time.Duration) { <-c.After(d) }

// Advance moves the clock forward, firing every waiter whose time has
// come, in deadline order.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	now := c.now
	var due, rest []*fakeWaiter
	for _, w := range c.waiters {
		if !w.at.After(now) {
			due = append(due, w)
		} else {
			rest = append(rest, w)
		}
	}
	c.waiters = rest
	c.mu.Unlock()
	sort.Slice(due, func(i, j int) bool { return due[i].at.Before(due[j].at) })
	for _, w := range due {
		w.ch <- now
	}
}

// Waiters reports how many timers are pending, letting a test
// synchronize on "the code under test has gone to sleep".
func (c *FakeClock) Waiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}
