package dispatch

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Runner executes one assignment in the worker process: build the
// analysis the spec JSON describes, optionally resume from the parent
// state bytes, analyze the spooled trace files with the requested
// decoder parallelism, and return the serialized partial state. It
// must respect ctx — the coordinator has already imposed the same
// deadline on its side.
type Runner func(ctx context.Context, spec []byte, parent []byte, files []string, decoders int) ([]byte, error)

// Fault is an injected failure mode for one assignment — the -flaky
// testing surface that makes the dist-smoke failure scenarios
// reproducible.
type Fault int

const (
	// FaultNone executes normally.
	FaultNone Fault = iota
	// FaultCrash computes the result, streams roughly half of it, then
	// kills the process — the killed-mid-stream scenario.
	FaultCrash
	// FaultHang stops cold before executing: no heartbeats, connection
	// held open — the hung-past-deadline scenario.
	FaultHang
	// FaultCorrupt flips one byte of the state blob before sending, so
	// the coordinator's checksum validation must catch it.
	FaultCorrupt
)

// Worker serves assignments from coordinators. Zero value plus a
// Runner is usable; Serve accepts connections until Drain.
type Worker struct {
	// Runner executes assignments. Required.
	Runner Runner
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...interface{})
	// FaultFor, when non-nil, maps the 1-based global assignment
	// sequence number to an injected fault.
	FaultFor func(seq int) Fault
	// Exit terminates the process for FaultCrash; nil means os.Exit.
	// Tests substitute a soft exit.
	Exit func(code int)
	// TempDir is the spool root for received trace pieces; empty means
	// the system temp dir.
	TempDir string

	mu       sync.Mutex
	lis      net.Listener
	conns    map[net.Conn]struct{}
	draining bool
	stop     chan struct{}
	nAssign  int
	busy     sync.WaitGroup // in-flight assignments, for Drain
	handlers sync.WaitGroup // live connection handlers
}

func (w *Worker) logf(format string, args ...interface{}) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// Serve accepts coordinator connections on lis until Drain (which
// returns nil) or a listener error. Each connection gets its own
// handler; assignments on one connection run serially, matching the
// coordinator's one-assignment-at-a-time protocol.
func (w *Worker) Serve(lis net.Listener) error {
	w.mu.Lock()
	w.lis = lis
	if w.stop == nil {
		w.stop = make(chan struct{})
	}
	if w.conns == nil {
		w.conns = make(map[net.Conn]struct{})
	}
	w.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			w.mu.Lock()
			draining := w.draining
			w.mu.Unlock()
			if draining {
				w.handlers.Wait()
				return nil
			}
			return err
		}
		w.mu.Lock()
		w.conns[conn] = struct{}{}
		w.mu.Unlock()
		w.handlers.Add(1)
		go func() {
			defer w.handlers.Done()
			w.handleConn(conn)
			w.mu.Lock()
			delete(w.conns, conn)
			w.mu.Unlock()
			conn.Close()
		}()
	}
}

// Drain is the SIGTERM path: stop accepting, let the in-flight
// assignment finish and its result flush, then close every
// connection. Serve returns nil once the drain completes.
func (w *Worker) Drain() {
	w.mu.Lock()
	if w.draining {
		w.mu.Unlock()
		return
	}
	w.draining = true
	if w.stop == nil {
		w.stop = make(chan struct{})
	}
	close(w.stop)
	lis := w.lis
	w.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	w.busy.Wait()
	w.mu.Lock()
	for conn := range w.conns {
		conn.Close()
	}
	w.mu.Unlock()
}

// handleConn registers with the coordinator and serves its
// assignments until the connection closes or the worker drains.
func (w *Worker) handleConn(conn net.Conn) {
	fr := newFrameRW(conn)
	host, _ := os.Hostname()
	if err := fr.sendJSON(frameHello, hello{Version: ProtocolVersion, Host: host, PID: os.Getpid()}); err != nil {
		return
	}
	for {
		t, payload, err := fr.recv()
		if err != nil {
			return
		}
		switch t {
		case frameShutdown:
			return
		case frameAssign:
			var ah assignHeader
			if err := json.Unmarshal(payload, &ah); err != nil {
				w.logf("worker: bad assign header: %v", err)
				return
			}
			w.mu.Lock()
			if w.draining {
				w.mu.Unlock()
				return
			}
			w.busy.Add(1)
			w.nAssign++
			seq := w.nAssign
			w.mu.Unlock()
			err := w.runAssignment(fr, ah, seq)
			w.busy.Done()
			if err != nil {
				w.logf("worker: assignment %d: %v", ah.ID, err)
				return
			}
		default:
			w.logf("worker: unexpected frame 0x%02x", t)
			return
		}
	}
}

// runAssignment receives the assignment's data blobs, executes the
// runner under the assignment deadline while heartbeating, and streams
// the result back. A non-nil return kills the connection; analysis
// errors are reported in-band and keep the connection alive.
func (w *Worker) runAssignment(fr *frameRW, ah assignHeader, seq int) error {
	var parent []byte
	var err error
	if ah.HasParent {
		parent, err = fr.recvBlob(maxBlobLen, nil)
		if err != nil {
			return fmt.Errorf("receiving parent state: %w", err)
		}
	}
	dir, err := os.MkdirTemp(w.TempDir, "nfsworker-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	paths := make([]string, len(ah.Files))
	for i, fm := range ah.Files {
		blob, err := fr.recvBlob(maxBlobLen, nil)
		if err != nil {
			return fmt.Errorf("receiving %s: %w", fm.Name, err)
		}
		paths[i] = filepath.Join(dir, fmt.Sprintf("%03d-%s", i, filepath.Base(fm.Name)))
		if err := os.WriteFile(paths[i], blob, 0o600); err != nil {
			return err
		}
	}

	fault := FaultNone
	if w.FaultFor != nil {
		fault = w.FaultFor(seq)
	}
	if fault == FaultHang {
		// A wedged worker: the connection stays open, heartbeats stop,
		// work never finishes. The coordinator's deadline or heartbeat
		// watchdog must recover; the process unwedges only on drain.
		w.logf("worker: FAULT hang on assignment %d (piece %d)", seq, ah.ID)
		<-w.stopCh()
		return fmt.Errorf("unwedged by drain")
	}

	ctx := context.Background()
	cancel := context.CancelFunc(func() {})
	if ah.DeadlineMS > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(ah.DeadlineMS)*time.Millisecond)
	}
	defer cancel()

	// Heartbeats flow for the whole execution, from a side goroutine;
	// frameRW serializes them against the result stream.
	hbStop := make(chan struct{})
	var hbDone sync.WaitGroup
	interval := time.Duration(ah.HeartbeatMS) * time.Millisecond
	if interval > 0 {
		hbDone.Add(1)
		go func() {
			defer hbDone.Done()
			for {
				select {
				case <-hbStop:
					return
				case <-time.After(interval):
					if err := fr.sendJSON(frameHeartbeat, heartbeat{ID: ah.ID}); err != nil {
						return
					}
				}
			}
		}()
	}
	state, runErr := w.Runner(ctx, ah.Spec, parent, paths, ah.Decoders)
	close(hbStop)
	hbDone.Wait()

	if runErr != nil {
		w.logf("worker: piece %d failed: %v", ah.ID, runErr)
		return fr.sendJSON(frameError, errorMsg{ID: ah.ID, Msg: runErr.Error()})
	}
	switch fault {
	case FaultCorrupt:
		w.logf("worker: FAULT corrupting result of assignment %d (piece %d)", seq, ah.ID)
		state = append([]byte(nil), state...)
		state[len(state)/2] ^= 0xFF
	case FaultCrash:
		w.logf("worker: FAULT crashing mid-stream on assignment %d (piece %d)", seq, ah.ID)
		if err := fr.sendJSON(frameResult, resultHeader{ID: ah.ID, Size: int64(len(state))}); err != nil {
			return err
		}
		// Stream some of the blob, then die without the terminator.
		half := state[:len(state)/2+1]
		for off := 0; off < len(half); off += chunkSize {
			end := off + chunkSize
			if end > len(half) {
				end = len(half)
			}
			if err := fr.send(frameChunk, half[off:end]); err != nil {
				return err
			}
		}
		exit := w.Exit
		if exit == nil {
			exit = os.Exit
		}
		exit(3)
		return fmt.Errorf("crash fault: exit hook returned")
	}
	if err := fr.sendJSON(frameResult, resultHeader{ID: ah.ID, Size: int64(len(state))}); err != nil {
		return err
	}
	if err := fr.sendBlob(state); err != nil {
		return err
	}
	w.logf("worker: piece %d done (%d state bytes)", ah.ID, len(state))
	return nil
}

func (w *Worker) stopCh() chan struct{} {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.stop == nil {
		w.stop = make(chan struct{})
	}
	return w.stop
}
