// Package dispatch moves analysis work across machines: a coordinator
// connects to remote workers over TCP, streams each one piece
// assignments (the job spec plus the trace bytes themselves, so
// workers need no shared filesystem), and collects serialized
// internal/state blobs back — supervising the whole exchange with
// heartbeats, per-assignment deadlines, exponential backoff with
// jitter on retry, and speculative re-dispatch of stragglers. The
// framing layer is wire.RecordConn, the same RFC 1831 record marking
// the NFS serving stack speaks, so a truncated stream is always
// distinguishable from an orderly close.
//
// The protocol is deliberately small. Every frame is one record:
// a type byte followed by a payload — JSON for control frames, raw
// bytes for data chunks. One assignment flows as
//
//	coord → worker   assign {id, attempt, spec, files, deadline}
//	coord → worker   [parent-state blob]   (chained analyses only)
//	coord → worker   one blob per input file
//	worker → coord   heartbeat … heartbeat (while analyzing)
//	worker → coord   result {id, size} + state blob   (or error {id, msg})
//
// A blob is a sequence of chunk frames closed by a blob-end frame, so
// a connection cut mid-transfer surfaces immediately as a protocol
// error rather than a short file.
package dispatch

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/wire"
)

// ProtocolVersion gates coordinator/worker compatibility: a worker
// whose hello carries a different version is rejected at registration.
const ProtocolVersion = 1

// Frame types. Values are wire format; do not renumber.
const (
	frameHello     byte = 0x01 // worker→coord: JSON hello{}
	frameAssign    byte = 0x02 // coord→worker: JSON assignHeader{}
	frameChunk     byte = 0x03 // either direction: raw blob bytes
	frameBlobEnd   byte = 0x04 // either direction: closes the current blob
	frameHeartbeat byte = 0x05 // worker→coord: JSON heartbeat{}
	frameResult    byte = 0x06 // worker→coord: JSON resultHeader{}, then state blob
	frameError     byte = 0x07 // worker→coord: JSON errorMsg{}
	frameShutdown  byte = 0x08 // coord→worker: no more assignments on this conn
)

// chunkSize bounds one data frame. Records cap at wire.MaxRecordLen;
// smaller chunks keep heartbeats interleaving during large transfers.
const chunkSize = 256 << 10

// maxBlobLen bounds a reassembled blob (a trace piece or a state
// file), protecting both ends from a corrupt or hostile size header.
const maxBlobLen = 1 << 31

// hello registers a worker with the coordinator.
type hello struct {
	Version int    `json:"version"`
	Host    string `json:"host"`
	PID     int    `json:"pid"`
}

// fileMeta names one input blob of an assignment.
type fileMeta struct {
	// Name is the base name the worker should give its spooled copy;
	// the ingest layer sniffs format from content, but a .gz suffix
	// keeps intent readable in worker temp dirs.
	Name string `json:"name"`
	Size int64  `json:"size"`
}

// assignHeader announces one piece assignment; the parent blob (when
// HasParent) and one blob per file follow immediately.
type assignHeader struct {
	ID        int             `json:"id"`
	Attempt   int             `json:"attempt"`
	Spec      json.RawMessage `json:"spec"`
	Decoders  int             `json:"decoders"`
	HasParent bool            `json:"has_parent"`
	Files     []fileMeta      `json:"files"`
	// DeadlineMS is the worker-side execution budget in milliseconds;
	// the coordinator enforces the same budget on its side, so a worker
	// that ignores it is cut off anyway.
	DeadlineMS int64 `json:"deadline_ms"`
	// HeartbeatMS is how often the worker must send heartbeats while
	// executing. The coordinator declares the worker dead after
	// missing several.
	HeartbeatMS int64 `json:"heartbeat_ms"`
}

// heartbeat is the worker's liveness beacon during an assignment.
type heartbeat struct {
	ID  int   `json:"id"`
	Ops int64 `json:"ops"` // progress indicator, advisory
}

// resultHeader announces a completed assignment; the state blob
// follows.
type resultHeader struct {
	ID   int   `json:"id"`
	Size int64 `json:"size"`
}

// errorMsg reports a failed assignment without killing the connection.
type errorMsg struct {
	ID  int    `json:"id"`
	Msg string `json:"msg"`
}

// frameRW sends and receives typed frames over record framing. Reads
// belong to one goroutine; writes are mutex-serialized so heartbeats
// can interleave with result chunks.
type frameRW struct {
	rc  *wire.RecordConn
	wmu sync.Mutex
}

func newFrameRW(rw io.ReadWriter) *frameRW {
	return &frameRW{rc: wire.NewRecordConn(rw)}
}

// send writes one frame: type byte + payload.
func (f *frameRW) send(t byte, payload []byte) error {
	f.wmu.Lock()
	defer f.wmu.Unlock()
	buf := make([]byte, 1+len(payload))
	buf[0] = t
	copy(buf[1:], payload)
	return f.rc.WriteRecord(buf)
}

// sendJSON marshals v as the payload of a t frame.
func (f *frameRW) sendJSON(t byte, v interface{}) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return f.send(t, b)
}

// recv reads one frame. io.EOF means the peer closed between frames;
// any truncation inside a frame is io.ErrUnexpectedEOF from the
// record layer.
func (f *frameRW) recv() (byte, []byte, error) {
	rec, err := f.rc.ReadRecord()
	if err != nil {
		return 0, nil, err
	}
	if len(rec) == 0 {
		return 0, nil, fmt.Errorf("dispatch: empty frame")
	}
	return rec[0], rec[1:], nil
}

// sendBlob streams data as chunk frames closed by a blob-end frame.
func (f *frameRW) sendBlob(data []byte) error {
	for off := 0; off < len(data); off += chunkSize {
		end := off + chunkSize
		if end > len(data) {
			end = len(data)
		}
		if err := f.send(frameChunk, data[off:end]); err != nil {
			return err
		}
	}
	return f.send(frameBlobEnd, nil)
}

// recvBlob reassembles one blob sent by sendBlob, bounding its total
// size. Heartbeat frames arriving interleaved are delivered to onBeat
// (which may be nil) rather than treated as protocol errors.
func (f *frameRW) recvBlob(limit int64, onBeat func([]byte)) ([]byte, error) {
	var buf []byte
	for {
		t, payload, err := f.recv()
		if err != nil {
			if err == io.EOF {
				// A blob was promised; a clean close mid-blob is still
				// a truncation at this layer.
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		switch t {
		case frameChunk:
			if int64(len(buf))+int64(len(payload)) > limit {
				return nil, fmt.Errorf("dispatch: blob exceeds %d byte limit", limit)
			}
			buf = append(buf, payload...)
		case frameBlobEnd:
			return buf, nil
		case frameHeartbeat:
			if onBeat != nil {
				onBeat(payload)
			}
		default:
			return nil, fmt.Errorf("dispatch: unexpected frame 0x%02x inside blob", t)
		}
	}
}
