// Package client simulates NFS clients: the nfsiod dispatch pool whose
// scheduling reorders calls on the wire (§4.1.5 of the paper), the
// weakly-consistent attribute and data caches that shape what an NFS
// server actually sees (§4.1.3), and the translation of file operations
// into timed NFS calls executed against a simulated server.
package client

import (
	"math/rand"
)

// Pool models the client's nfsiod daemons. Application calls enter a
// FIFO queue; each is picked up by the next free daemon, whose process
// scheduling adds jitter. With one daemon the wire order always equals
// issue order; with several, calls issued close together can swap —
// the paper measured up to 10% swapped calls and delays up to a second.
type Pool struct {
	// Daemons is the number of nfsiods (1 disables reordering).
	Daemons int
	// SchedJitter is the mean of the exponential per-dispatch
	// scheduling delay in seconds.
	SchedJitter float64
	// StallProb is the probability a dispatch suffers a long scheduler
	// stall, and StallMax bounds it (uniform). The paper observed
	// delays as long as one second.
	StallProb float64
	StallMax  float64

	rng  *rand.Rand
	free []float64 // per-daemon next-free time
}

// NewPool builds a pool with the paper's observed characteristics:
// scheduling jitter of ~30µs (which yields ~10% swapped calls for
// back-to-back 50µs request spacing, the paper's extreme case) and rare
// stalls that delay calls up to about a second end to end.
func NewPool(daemons int, seed int64) *Pool {
	if daemons < 1 {
		daemons = 1
	}
	return &Pool{
		Daemons:     daemons,
		SchedJitter: 0.00003,
		StallProb:   0.0003,
		StallMax:    0.5,
		rng:         rand.New(rand.NewSource(seed)),
		free:        make([]float64, daemons),
	}
}

// Dispatch assigns a wire time to a call issued at t. Calls must be
// issued in nondecreasing time order.
func (p *Pool) Dispatch(t float64) float64 {
	// Pick the earliest-free daemon (small N; linear scan is fine).
	best := 0
	for i := 1; i < len(p.free); i++ {
		if p.free[i] < p.free[best] {
			best = i
		}
	}
	start := t
	if p.free[best] > start {
		start = p.free[best]
	}
	delay := 0.0
	if p.Daemons > 1 {
		delay = p.rng.ExpFloat64() * p.SchedJitter
		if p.rng.Float64() < p.StallProb {
			delay += p.rng.Float64() * p.StallMax
		}
	}
	wire := start + delay
	// The daemon is busy for the send duration (~20µs of CPU/wire).
	p.free[best] = wire + 0.00002
	return wire
}

// MeasureReordering issues n calls spaced gap seconds apart and reports
// the fraction of adjacent pairs that appear swapped on the wire. This
// is the isolated-network experiment of §4.1.5.
func MeasureReordering(daemons, n int, gap float64, seed int64) (swappedFrac float64, maxDelay float64) {
	p := NewPool(daemons, seed)
	wire := make([]float64, n)
	t := 0.0
	for i := 0; i < n; i++ {
		wire[i] = p.Dispatch(t)
		if d := wire[i] - t; d > maxDelay {
			maxDelay = d
		}
		t += gap
	}
	swapped := 0
	for i := 1; i < n; i++ {
		if wire[i] < wire[i-1] {
			swapped++
		}
	}
	return float64(swapped) / float64(n-1), maxDelay
}
