package client

import (
	"testing"

	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/nfs"
	"repro/internal/server"
	"repro/internal/vfs"
)

func newRig(version uint32) (*Client, *SliceSink, *server.Server) {
	fs := vfs.New()
	now := 0.0
	fs.Clock = func() float64 { now += 0.0001; return now }
	srv := server.New(fs)
	sink := &SliceSink{}
	c := New(Config{IP: 0x0a000005, UID: 501, GID: 100, Version: version, Seed: 11},
		srv, 0x0a000001, sink)
	return c, sink, srv
}

func TestPoolSingleDaemonPreservesOrder(t *testing.T) {
	frac, _ := MeasureReordering(1, 5000, 0.0001, 1)
	if frac != 0 {
		t.Fatalf("1 nfsiod swapped %.2f%% of calls", frac*100)
	}
}

func TestPoolReorderingGrowsWithDaemons(t *testing.T) {
	f1, _ := MeasureReordering(1, 20000, 0.00005, 2)
	f4, _ := MeasureReordering(4, 20000, 0.00005, 2)
	f8, d8 := MeasureReordering(8, 20000, 0.00005, 2)
	if !(f1 < f4 && f4 <= f8+0.02) {
		t.Fatalf("reordering not increasing: %v %v %v", f1, f4, f8)
	}
	if f8 < 0.02 || f8 > 0.25 {
		t.Fatalf("8-daemon reordering %.1f%% outside the paper's regime", f8*100)
	}
	if d8 < 0.1 {
		t.Fatalf("max delay %.3fs; paper observed delays up to ~1s", d8)
	}
}

func TestRoundTripEmitsCallAndReply(t *testing.T) {
	c, sink, _ := newRig(nfs.V3)
	root := c.Server.FS.RootFH()
	fh, _ := c.Create(1.0, root, "mbox", false)
	if fh == nil {
		t.Fatal("create failed")
	}
	if len(sink.Records) != 2 {
		t.Fatalf("%d records", len(sink.Records))
	}
	call, reply := sink.Records[0], sink.Records[1]
	if call.Kind != core.KindCall || reply.Kind != core.KindReply {
		t.Fatalf("kinds: %c %c", call.Kind, reply.Kind)
	}
	if call.XID != reply.XID {
		t.Fatal("xid mismatch")
	}
	if call.Proc != core.MustProc("create") || call.Name != "mbox" {
		t.Fatalf("call: %+v", call)
	}
	if reply.NewFH == core.InternFH("") || reply.Status != 0 {
		t.Fatalf("reply: %+v", reply)
	}
	if reply.Time <= call.Time {
		t.Fatal("reply not after call")
	}
	if call.UID != 501 || call.GID != 100 {
		t.Fatalf("cred: %d/%d", call.UID, call.GID)
	}
}

func TestReadFileCacheAbsorption(t *testing.T) {
	c, sink, srv := newRig(nfs.V3)
	root := srv.FS.RootFH()
	// Another host writes the file; c has never seen it.
	w := New(Config{IP: 0x0a000007, UID: 0, GID: 0, Version: nfs.V3, Seed: 31},
		srv, 0x0a000001, sink)
	fh, rt := w.Create(1.0, root, "inbox", false)
	rt = w.WriteRange(rt, fh, 0, 64*1024)
	sink.Records = sink.Records[:0]

	// First read: full transfer.
	before := len(sink.Records)
	wire1, rt := c.ReadFile(rt+1, fh, 64*1024)
	if wire1 != 64*1024 {
		t.Fatalf("first read moved %d bytes", wire1)
	}
	readCalls := 0
	for _, r := range sink.Records[before:] {
		if r.Kind == core.KindCall && r.Proc == core.MustProc("read") {
			readCalls++
		}
	}
	if readCalls != 8 {
		t.Fatalf("%d read calls for 64k, want 8", readCalls)
	}

	// Second read within attr timeout: fully absorbed (no wire reads,
	// not even a getattr since attrs are fresh).
	before = len(sink.Records)
	wire2, rt := c.ReadFile(rt+1, fh, 64*1024)
	if wire2 != 0 {
		t.Fatalf("cached read moved %d bytes", wire2)
	}
	for _, r := range sink.Records[before:] {
		if r.Proc == core.MustProc("read") {
			t.Fatal("cached read hit the wire")
		}
	}

	// After the attr cache expires, a validation getattr goes out; the
	// data is still valid (mtime unchanged), so no reads.
	before = len(sink.Records)
	wire3, rt := c.ReadFile(rt+c.AttrTimeout+1, fh, 64*1024)
	if wire3 != 0 {
		t.Fatalf("validated read moved %d bytes", wire3)
	}
	sawGetattr := false
	for _, r := range sink.Records[before:] {
		if r.Kind == core.KindCall {
			if r.Proc == core.MustProc("getattr") {
				sawGetattr = true
			}
			if r.Proc == core.MustProc("read") {
				t.Fatal("valid cache re-read")
			}
		}
	}
	if !sawGetattr {
		t.Fatal("no validation getattr after timeout")
	}
	_ = rt
}

func TestMailboxInvalidationRereadsWholeFile(t *testing.T) {
	// The CAMPUS pathology (§6.1.2): delivery appends to the mailbox,
	// the file mtime changes, and the client re-reads the entire file.
	c, sink, srv := newRig(nfs.V3)
	root := srv.FS.RootFH()
	// The SMTP delivery host owns writes to the mailbox.
	d := New(Config{IP: 0x0a000006, UID: 0, GID: 0, Version: nfs.V3, Seed: 21},
		srv, 0x0a000001, sink)
	fh, rt := d.Create(1.0, root, "inbox", false)
	rt = d.WriteRange(rt, fh, 0, 2<<20) // 2 MB mailbox

	// The mail reader scans the whole mailbox.
	if wire, r2 := c.ReadFile(rt+1, fh, 2<<20); wire != 2<<20 {
		t.Fatalf("initial read %d", wire)
	} else {
		rt = r2
	}

	// A new message arrives: delivery appends 4 KB.
	d.WriteRange(rt+2, fh, 2<<20, 4096)

	// The reader's attr cache expires, it validates, sees the new
	// mtime, and re-reads all 2 MB + 4 KB.
	wire, _ := c.ReadFile(rt+c.AttrTimeout+5, fh, (2<<20)+4096)
	if wire != (2<<20)+4096 {
		t.Fatalf("invalidation re-read moved %d bytes, want full file", wire)
	}
}

func TestLookupCached(t *testing.T) {
	c, sink, srv := newRig(nfs.V3)
	root := srv.FS.RootFH()
	_, rt := c.Create(1.0, root, "f", false)
	before := len(sink.Records)
	fh, rt := c.LookupCached(rt, root, "f")
	if fh == nil {
		t.Fatal("lookup failed")
	}
	if len(sink.Records) != before {
		t.Fatal("cached lookup hit the wire")
	}
	// After expiry it goes to the wire.
	fh2, _ := c.LookupCached(rt+c.AttrTimeout+1, root, "f")
	if fh2 == nil || len(sink.Records) == before {
		t.Fatal("expired lookup did not refresh")
	}
}

func TestV2ClientEmitsV2Records(t *testing.T) {
	c, sink, srv := newRig(nfs.V2)
	root := srv.FS.RootFH()
	fh, rt := c.Create(1.0, root, "data.txt", false)
	if fh == nil {
		t.Fatal("v2 create failed")
	}
	rt = c.WriteRange(rt, fh, 0, 4096)
	c.ReadRange(rt+0.1, fh, 0, 4096)
	c.Access(rt+0.2, fh)
	for _, r := range sink.Records {
		if r.Version != nfs.V2 {
			t.Fatalf("v2 client emitted v%d record: %+v", r.Version, r)
		}
		if r.Proc == core.MustProc("access") || r.Proc == core.MustProc("commit") {
			t.Fatalf("v2 client emitted v3-only proc %q", r.Proc)
		}
	}
	// v2 small write is synchronous; no commit should appear, and the
	// write must carry FileSync implicitly (stable field meaningless in
	// v2 records, count preserved).
	var sawWrite bool
	for _, r := range sink.Records {
		if r.Kind == core.KindCall && r.Proc == core.MustProc("write") {
			sawWrite = true
			if r.Count != 4096 {
				t.Fatalf("v2 write count %d", r.Count)
			}
		}
	}
	if !sawWrite {
		t.Fatal("no v2 write observed")
	}
}

func TestAppendUsesCachedSize(t *testing.T) {
	c, sink, srv := newRig(nfs.V3)
	root := srv.FS.RootFH()
	fh, rt := c.Create(1.0, root, "mbox", false)
	rt = c.Append(rt, fh, 5000)
	rt = c.Append(rt, fh, 3000)
	_ = rt
	// Find the write calls; the second append must start at offset 5000.
	var offsets []uint64
	for _, r := range sink.Records {
		if r.Kind == core.KindCall && r.Proc == core.MustProc("write") {
			offsets = append(offsets, r.Offset)
		}
	}
	if len(offsets) != 2 || offsets[0] != 0 || offsets[1] != 5000 {
		t.Fatalf("append offsets: %v", offsets)
	}
	ino, _ := srv.FS.GetFH(fh)
	if ino.Size != 8000 {
		t.Fatalf("file size %d", ino.Size)
	}
}

func TestRemoveInvalidatesCaches(t *testing.T) {
	c, _, srv := newRig(nfs.V3)
	root := srv.FS.RootFH()
	fh, rt := c.Create(1.0, root, "tmp", false)
	status, rt := c.Remove(rt, root, "tmp")
	if status != nfs.OK {
		t.Fatalf("remove status %d", status)
	}
	// A fresh create reuses the name; cached handle must not leak.
	fh2, _ := c.LookupCached(rt, root, "tmp")
	if fh2 != nil && fh2.Equal(fh) {
		t.Fatal("stale name cache entry survived remove")
	}
}

func TestSortingSinkOrdersRecords(t *testing.T) {
	var got []*core.Record
	final := FuncSink(func(r *core.Record, _ int) { got = append(got, r) })
	s := NewSortingSink(final)
	times := []float64{10, 11, 10.5, 12, 11.7, 30, 29.5, 40}
	for _, tm := range times {
		s.Record(&core.Record{Time: tm}, 100)
	}
	s.Flush()
	if len(got) != len(times) {
		t.Fatalf("%d records out", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Time > got[i].Time {
			t.Fatalf("unsorted output at %d", i)
		}
	}
}

func TestLossySinkDropsUnderOverload(t *testing.T) {
	var kept int
	final := FuncSink(func(r *core.Record, _ int) { kept++ })
	port := netem.NewMirrorPort()
	port.Rate = 1e6 // cripple the port: 1 MB/s
	l := &LossySink{Next: final, Port: port}
	// Offer 10 MB in one second: most must drop.
	n := 0
	for t0 := 0.0; t0 < 1.0; t0 += 0.001 {
		l.Record(&core.Record{Time: t0}, 10000)
		n++
	}
	if kept >= n {
		t.Fatal("no loss under overload")
	}
	if port.LossRate() < 0.5 {
		t.Fatalf("loss rate %.2f too low for 10x overload", port.LossRate())
	}
}

func TestReadRangePipelinedTimesCanSwap(t *testing.T) {
	// With several nfsiods, a long pipelined read batch should show at
	// least some wire-time inversions relative to offset order.
	c, sink, srv := newRig(nfs.V3)
	c.Pool = NewPool(8, 99)
	root := srv.FS.RootFH()
	fh, rt := c.Create(1.0, root, "big", false)
	rt = c.WriteRange(rt, fh, 0, 4<<20)
	sink.Records = sink.Records[:0]
	c.ReadRange(rt+1, fh, 0, 4<<20) // 512 pipelined reads
	type ev struct {
		t   float64
		off uint64
	}
	var reads []ev
	for _, r := range sink.Records {
		if r.Kind == core.KindCall && r.Proc == core.MustProc("read") {
			reads = append(reads, ev{r.Time, r.Offset})
		}
	}
	if len(reads) != 512 {
		t.Fatalf("%d reads", len(reads))
	}
	swaps := 0
	for i := 1; i < len(reads); i++ {
		if reads[i].t < reads[i-1].t {
			swaps++
		}
	}
	if swaps == 0 {
		t.Fatal("no wire-time inversions in a 512-read pipeline with 8 nfsiods")
	}
}
