package client

import (
	"repro/internal/core"
	"repro/internal/nfs"
	"repro/internal/xdr"
)

// Record construction: the client encodes its calls (and the server's
// replies) through the real wire codecs and re-parses them with the
// semantic layer, so the records it emits are exactly what a sniffer
// would extract from the packets. This keeps the fast record-level
// pipeline byte-faithful to the wire-level one.

// buildCallRecord encodes args and parses them back into a call record.
func buildCallRecord(t float64, clientIP uint32, port uint16, serverIP uint32,
	proto byte, xid, version, proc uint32, uid, gid uint32, args any) (*core.Record, int) {

	e := xdr.NewEncoder(256)
	var err error
	if version == nfs.V3 {
		err = nfs.EncodeArgs3(e, proc, args)
	} else {
		err = nfs.EncodeArgs2(e, proc, args)
	}
	if err != nil {
		panic("client: encoding own call failed: " + err.Error())
	}
	info, err := nfs.ParseCall(version, proc, e.Bytes())
	if err != nil {
		panic("client: re-parsing own call failed: " + err.Error())
	}
	rec := &core.Record{
		Time: t, Kind: core.KindCall,
		Client: clientIP, Port: port, Server: serverIP, Proto: proto,
		XID: xid, Version: version, Proc: core.MustProc(info.Name),
		UID: uid, GID: gid,
		FH: core.InternFH(info.FH.String()), Name: info.FName,
		FH2: core.InternFH(info.FH2.String()), Name2: info.FName2,
		Offset: info.Offset, Count: info.Count, Stable: info.Stable,
	}
	if info.SetSize != nil {
		rec.SetSize, rec.HasSet = *info.SetSize, true
	}
	// Wire size estimate: eth+ip+transport+rpc header ≈ 150 bytes plus
	// the encoded body (write data rides in the body already).
	return rec, 150 + e.Len()
}

// buildReplyRecord encodes res and parses it back into a reply record.
func buildReplyRecord(t float64, clientIP uint32, port uint16, serverIP uint32,
	proto byte, xid, version, proc uint32, res any) (*core.Record, int) {

	e := xdr.NewEncoder(256)
	var err error
	if version == nfs.V3 {
		err = nfs.EncodeRes3(e, proc, res)
	} else {
		err = nfs.EncodeRes2(e, proc, res)
	}
	if err != nil {
		panic("client: encoding reply failed: " + err.Error())
	}
	info, err := nfs.ParseReply(version, proc, e.Bytes())
	if err != nil {
		panic("client: re-parsing reply failed: " + err.Error())
	}
	rec := &core.Record{
		Time: t, Kind: core.KindReply,
		Client: clientIP, Port: port, Server: serverIP, Proto: proto,
		XID: xid, Version: version, Proc: core.MustProc(info.Name),
		Status: info.Status, RCount: info.Count, EOF: info.EOF,
		NewFH: core.InternFH(info.NewFH.String()),
	}
	if info.Attr != nil {
		rec.Size = info.Attr.Size
		rec.FileID = info.Attr.FileID
		rec.Mtime = info.Attr.Mtime.Seconds()
	}
	if info.Pre != nil {
		rec.PreSize, rec.HasPre = info.Pre.Size, true
	}
	return rec, 150 + e.Len()
}
