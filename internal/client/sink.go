package client

import (
	"container/heap"

	"repro/internal/core"
	"repro/internal/netem"
)

// Sink receives trace records from the simulation. The size argument is
// the estimated wire size of the message carrying the record, which the
// mirror-port loss model needs.
type Sink interface {
	Record(rec *core.Record, wireSize int)
}

// SliceSink collects records in memory.
type SliceSink struct {
	Records []*core.Record
}

// Record implements Sink.
func (s *SliceSink) Record(rec *core.Record, _ int) {
	s.Records = append(s.Records, rec)
}

// FuncSink adapts a function to Sink.
type FuncSink func(rec *core.Record, wireSize int)

// Record implements Sink.
func (f FuncSink) Record(rec *core.Record, wireSize int) { f(rec, wireSize) }

// recordHeap orders records by time.
type recordHeap []*core.Record

func (h recordHeap) Len() int           { return len(h) }
func (h recordHeap) Less(i, j int) bool { return h[i].Time < h[j].Time }
func (h recordHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *recordHeap) Push(x any)        { *h = append(*h, x.(*core.Record)) }
func (h *recordHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// SortingSink reorders records into global time order before passing
// them on. The simulation emits each operation's call and reply
// together, but wire times interleave across operations: nfsiod jitter
// moves calls by up to a second, and in-session activities (message
// views, builds) emit their records inline ahead of other actors'
// scheduled events. A bounded look-ahead window restores capture order;
// it must exceed the longest inline think-time stretch any workload
// activity produces (bounded well under five minutes).
type SortingSink struct {
	Next   Sink
	Window float64

	h recordHeap
}

// NewSortingSink wraps next with a five-minute reordering window.
func NewSortingSink(next Sink) *SortingSink {
	return &SortingSink{Next: next, Window: 300.0}
}

// Record implements Sink.
func (s *SortingSink) Record(rec *core.Record, wireSize int) {
	heap.Push(&s.h, rec)
	for s.h.Len() > 0 && s.h[0].Time < rec.Time-s.Window {
		s.Next.Record(heap.Pop(&s.h).(*core.Record), 0)
	}
}

// Flush drains all buffered records in time order.
func (s *SortingSink) Flush() {
	for s.h.Len() > 0 {
		rec := heap.Pop(&s.h).(*core.Record)
		s.Next.Record(rec, 0)
	}
}

// LossySink drops records whose packets the mirror port misses. Apply
// this *before* sorting, in emission order, since the port model is
// stateful in time. Note the port sees packets in wire-time order only
// approximately; the small local disorder underestimates loss slightly,
// which matches the paper's own uncertainty.
type LossySink struct {
	Next Sink
	Port *netem.MirrorPort
}

// Record implements Sink.
func (l *LossySink) Record(rec *core.Record, wireSize int) {
	if l.Port != nil && !l.Port.Offer(rec.Time, wireSize) {
		return
	}
	l.Next.Record(rec, wireSize)
}
