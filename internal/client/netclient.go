package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/nfs"
	"repro/internal/rpc"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/internal/xdr"
)

// NetClient is the socket twin of Client: it issues NFS calls to a
// server.NetServer (or anything speaking ONC RPC over record-marked
// TCP) across a real connection. Calls from multiple goroutines share
// one connection and pipeline naturally; a reader loop matches replies
// back to callers by xid. This is the transport under nfsbench's
// simulated clients and the loopback integration tests.
type NetClient struct {
	// Version selects the protocol spoken: nfs.V2 or nfs.V3. Callers
	// use the v3 procedure vocabulary; v2 clients translate, mirroring
	// the in-process Client.
	Version  uint32
	UID, GID uint32

	conn net.Conn
	rc   *wire.RecordConn

	wmu sync.Mutex // serializes record writes

	mu       sync.Mutex // guards xid, inflight, err
	xid      uint32
	inflight map[uint32]*netCall
	err      error

	// Unmatched counts replies whose xid matched no outstanding call.
	Unmatched atomic.Int64
}

type netCall struct {
	version uint32
	proc    uint32
	done    chan netReply
}

type netReply struct {
	res any
	err error
}

// ErrClientClosed reports a call issued after the connection died.
var ErrClientClosed = errors.New("client: connection closed")

// DialNFS connects to an NFS-over-TCP server. version is nfs.V2 or
// nfs.V3; uid/gid populate the AUTH_SYS credential on every call.
func DialNFS(addr string, version uint32, uid, gid uint32) (*NetClient, error) {
	if version != nfs.V2 && version != nfs.V3 {
		return nil, fmt.Errorf("client: unsupported NFS version %d", version)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &NetClient{
		Version:  version,
		UID:      uid,
		GID:      gid,
		conn:     conn,
		rc:       wire.NewRecordConn(conn),
		inflight: make(map[uint32]*netCall),
	}
	go c.readLoop()
	return c, nil
}

// Close tears down the connection; outstanding calls fail with
// ErrClientClosed (or the transport error that killed the socket).
func (c *NetClient) Close() error {
	err := c.conn.Close()
	c.fail(ErrClientClosed)
	return err
}

// fail marks the client dead and fails every outstanding call.
func (c *NetClient) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.inflight
	c.inflight = make(map[uint32]*netCall)
	c.mu.Unlock()
	for _, call := range pending {
		call.done <- netReply{err: err}
	}
}

func (c *NetClient) readLoop() {
	for {
		msg, err := c.rc.ReadRecord()
		if err != nil {
			c.fail(fmt.Errorf("client: read: %w", err))
			return
		}
		dec, err := rpc.Decode(msg)
		if err != nil || dec.Type != rpc.Reply {
			c.fail(fmt.Errorf("client: bad reply message: %v", err))
			return
		}
		h := dec.Reply
		c.mu.Lock()
		call := c.inflight[h.XID]
		delete(c.inflight, h.XID)
		c.mu.Unlock()
		if call == nil {
			c.Unmatched.Add(1)
			continue
		}
		call.done <- decodeReply(call.version, call.proc, h)
	}
}

func decodeReply(version, proc uint32, h *rpc.ReplyHeader) netReply {
	if h.ReplyStat != rpc.MsgAccepted {
		return netReply{err: fmt.Errorf("client: rpc denied (stat %d)", h.ReplyStat)}
	}
	if h.AcceptStat != rpc.Success {
		return netReply{err: fmt.Errorf("client: rpc accept stat %d", h.AcceptStat)}
	}
	var res any
	var err error
	if version == nfs.V3 {
		res, err = nfs.DecodeRes3(proc, h.Results)
	} else {
		res, err = nfs.DecodeRes2(proc, h.Results)
	}
	if err != nil {
		return netReply{err: fmt.Errorf("client: decoding results: %w", err)}
	}
	return netReply{res: res}
}

// Call issues one procedure in the client's own version vocabulary and
// blocks until the reply arrives. It is safe to call from many
// goroutines; concurrent calls pipeline on the shared connection.
func (c *NetClient) Call(proc uint32, args any) (any, error) {
	argEnc := xdr.NewEncoder(256)
	var err error
	if c.Version == nfs.V3 {
		err = nfs.EncodeArgs3(argEnc, proc, args)
	} else {
		err = nfs.EncodeArgs2(argEnc, proc, args)
	}
	if err != nil {
		return nil, err
	}

	call := &netCall{version: c.Version, proc: proc, done: make(chan netReply, 1)}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.xid++
	xid := c.xid
	c.inflight[xid] = call
	c.mu.Unlock()

	cred := xdr.NewEncoder(64)
	(&rpc.AuthSysBody{MachineName: "nfsbench", UID: c.UID, GID: c.GID}).Encode(cred)
	e := xdr.NewEncoder(128 + argEnc.Len())
	rpc.EncodeCall(e, &rpc.CallHeader{
		XID:     xid,
		Program: rpc.ProgramNFS,
		Version: c.Version,
		Proc:    proc,
		Cred:    rpc.OpaqueAuth{Flavor: rpc.AuthSys, Body: cred.Bytes()},
		Verf:    rpc.OpaqueAuth{Flavor: rpc.AuthNone},
		Args:    argEnc.Bytes(),
	})

	c.wmu.Lock()
	werr := c.rc.WriteRecord(e.Bytes())
	c.wmu.Unlock()
	if werr != nil {
		c.mu.Lock()
		delete(c.inflight, xid)
		c.mu.Unlock()
		c.fail(werr)
		return nil, werr
	}
	r := <-call.done
	return r.res, r.err
}

// callV3 issues a call expressed in v3 vocabulary, translating args for
// v2 connections the same way the in-process Client does.
func (c *NetClient) callV3(v3proc uint32, v3args any) (any, error) {
	proc, args := v3proc, v3args
	if c.Version == nfs.V2 {
		proc, args = translateV2(v3proc, v3args)
	}
	return c.Call(proc, args)
}

// translateV2 narrows a v3 procedure + args to the v2 equivalents used
// by the benchmark ops (reads, writes, and metadata).
func translateV2(proc uint32, args any) (uint32, any) {
	switch proc {
	case nfs.V3Getattr:
		return nfs.V2Getattr, args
	case nfs.V3Access:
		a := args.(*nfs.AccessArgs3)
		return nfs.V2Getattr, &nfs.GetattrArgs3{FH: a.FH}
	case nfs.V3Lookup:
		return nfs.V2Lookup, args
	case nfs.V3Read:
		a := args.(*nfs.ReadArgs3)
		return nfs.V2Read, &nfs.ReadArgs2{FH: a.FH, Offset: uint32(a.Offset),
			Count: a.Count, TotalCount: a.Count}
	case nfs.V3Write:
		a := args.(*nfs.WriteArgs3)
		return nfs.V2Write, &nfs.WriteArgs2{FH: a.FH, Offset: uint32(a.Offset),
			Data: server.Filler(int(a.Count))}
	case nfs.V3Create:
		a := args.(*nfs.CreateArgs3)
		return nfs.V2Create, &nfs.CreateArgs2{Where: a.Where, Attr: a.Attr}
	case nfs.V3Setattr:
		a := args.(*nfs.SetattrArgs3)
		return nfs.V2Setattr, &nfs.SetattrArgs2{FH: a.FH, Attr: a.Attr}
	case nfs.V3Remove:
		return nfs.V2Remove, args
	default:
		return nfs.V2Null, nil
	}
}

// StatusOf extracts the NFS status from any decoded result struct; nil
// results (NULL) report OK.
func StatusOf(res any) uint32 {
	switch r := res.(type) {
	case nil:
		return nfs.OK
	case *nfs.GetattrRes3:
		return r.Status
	case *nfs.SetattrRes3:
		return r.Status
	case *nfs.LookupRes3:
		return r.Status
	case *nfs.AccessRes3:
		return r.Status
	case *nfs.ReadRes3:
		return r.Status
	case *nfs.WriteRes3:
		return r.Status
	case *nfs.CreateRes3:
		return r.Status
	case *nfs.RemoveRes3:
		return r.Status
	case *nfs.RenameRes3:
		return r.Status
	case *nfs.ReaddirRes3:
		return r.Status
	case *nfs.FsstatRes3:
		return r.Status
	case *nfs.CommitRes3:
		return r.Status
	case *nfs.AttrStatRes2:
		return r.Status
	case *nfs.DirOpRes2:
		return r.Status
	case *nfs.StatusRes2:
		return r.Status
	case *nfs.ReadRes2:
		return r.Status
	case *nfs.ReaddirRes2:
		return r.Status
	case *nfs.StatfsRes2:
		return r.Status
	default:
		return nfs.ErrIO
	}
}

// --- Benchmark-grade operation helpers (v3 vocabulary, any version) ---

// NetGetattr fetches attributes and returns the NFS status.
func (c *NetClient) NetGetattr(fh nfs.FH) (uint32, error) {
	res, err := c.callV3(nfs.V3Getattr, &nfs.GetattrArgs3{FH: fh})
	if err != nil {
		return 0, err
	}
	return StatusOf(res), nil
}

// NetAccess checks permissions (GETATTR on v2).
func (c *NetClient) NetAccess(fh nfs.FH) (uint32, error) {
	res, err := c.callV3(nfs.V3Access, &nfs.AccessArgs3{FH: fh, Access: 0x3F})
	if err != nil {
		return 0, err
	}
	return StatusOf(res), nil
}

// NetLookup resolves name in dir, returning the handle on success.
func (c *NetClient) NetLookup(dir nfs.FH, name string) (nfs.FH, uint32, error) {
	res, err := c.callV3(nfs.V3Lookup, &nfs.LookupArgs3{Dir: dir, Name: name})
	if err != nil {
		return nil, 0, err
	}
	switch r := res.(type) {
	case *nfs.LookupRes3:
		return r.FH, r.Status, nil
	case *nfs.DirOpRes2:
		return r.FH, r.Status, nil
	}
	return nil, nfs.ErrIO, nil
}

// NetRead reads count bytes at offset and returns the status.
func (c *NetClient) NetRead(fh nfs.FH, offset uint64, count uint32) (uint32, error) {
	res, err := c.callV3(nfs.V3Read, &nfs.ReadArgs3{FH: fh, Offset: offset, Count: count})
	if err != nil {
		return 0, err
	}
	return StatusOf(res), nil
}

// NetWrite writes count filler bytes at offset and returns the status.
func (c *NetClient) NetWrite(fh nfs.FH, offset uint64, count uint32) (uint32, error) {
	res, err := c.callV3(nfs.V3Write, &nfs.WriteArgs3{
		FH: fh, Offset: offset, Count: count, Stable: nfs.FileSync,
		Data: server.Filler(int(count))})
	if err != nil {
		return 0, err
	}
	return StatusOf(res), nil
}

// NetCreate makes name in dir, returning the new handle.
func (c *NetClient) NetCreate(dir nfs.FH, name string) (nfs.FH, uint32, error) {
	attr := nfs.Sattr{UID: &c.UID, GID: &c.GID}
	res, err := c.callV3(nfs.V3Create, &nfs.CreateArgs3{
		Where: nfs.DirOpArgs3{Dir: dir, Name: name}, Attr: attr})
	if err != nil {
		return nil, 0, err
	}
	switch r := res.(type) {
	case *nfs.CreateRes3:
		return r.FH, r.Status, nil
	case *nfs.DirOpRes2:
		return r.FH, r.Status, nil
	}
	return nil, nfs.ErrIO, nil
}

// NetTruncate sets the file size.
func (c *NetClient) NetTruncate(fh nfs.FH, size uint64) (uint32, error) {
	res, err := c.callV3(nfs.V3Setattr, &nfs.SetattrArgs3{FH: fh,
		Attr: nfs.Sattr{Size: &size}})
	if err != nil {
		return 0, err
	}
	return StatusOf(res), nil
}

// NetRemove unlinks name in dir.
func (c *NetClient) NetRemove(dir nfs.FH, name string) (uint32, error) {
	res, err := c.callV3(nfs.V3Remove, &nfs.DirOpArgs3{Dir: dir, Name: name})
	if err != nil {
		return 0, err
	}
	return StatusOf(res), nil
}
