package client

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/nfs"
	"repro/internal/server"
)

// Client simulates one NFS client host: it turns file-level operations
// into timed NFS calls against a simulated server, maintains the
// weakly-consistent attribute/data caches that make NFS server
// workloads what they are, and dispatches calls through an nfsiod pool.
//
// All times are float seconds since the trace epoch. Methods take the
// operation's start time and return the time the client observed the
// reply, so callers can sequence dependent operations.
type Client struct {
	IP       uint32
	Port     uint16
	UID, GID uint32
	Version  uint32 // nfs.V2 or nfs.V3
	Proto    byte   // core.ProtoUDP or core.ProtoTCP

	Server   *server.Server
	ServerIP uint32
	Sink     Sink
	Pool     *Pool

	// RTT is the base call→reply latency; a small exponential jitter is
	// added per call.
	RTT float64
	// AttrTimeout is the attribute-cache validity window. Real clients
	// use 3–60s; 30s is the common default.
	AttrTimeout float64
	// XferSize is the read/write transfer size (rsize/wsize). 8 KB was
	// the v2 limit and a common v3 default; fast v3 clients used 32 KB.
	XferSize uint64

	rng *rand.Rand
	xid uint32
	tap *WireTap

	attrs map[string]*attrEntry
	data  map[string]float64 // fh key → mtime of cached contents
	names map[nameKey]nameEntry
}

type attrEntry struct {
	checkedAt float64
	mtime     float64
	size      uint64
}

type nameKey struct {
	dir  string
	name string
}

type nameEntry struct {
	fh        nfs.FH
	checkedAt float64
}

// Config bundles the constructor parameters that vary per host.
type Config struct {
	IP       uint32
	UID, GID uint32
	Version  uint32
	Proto    byte
	Daemons  int
	Seed     int64
}

// New builds a client attached to a server and record sink.
func New(cfg Config, srv *server.Server, serverIP uint32, sink Sink) *Client {
	rng := rand.New(rand.NewSource(cfg.Seed))
	version := cfg.Version
	if version == 0 {
		version = nfs.V3
	}
	proto := cfg.Proto
	if proto == 0 {
		proto = core.ProtoUDP
	}
	daemons := cfg.Daemons
	if daemons == 0 {
		daemons = 4
	}
	return &Client{
		IP:          cfg.IP,
		Port:        uint16(600 + rng.Intn(400)),
		UID:         cfg.UID,
		GID:         cfg.GID,
		Version:     version,
		Proto:       proto,
		Server:      srv,
		ServerIP:    serverIP,
		Sink:        sink,
		Pool:        NewPool(daemons, cfg.Seed^0x5eed),
		RTT:         0.0004,
		AttrTimeout: 30,
		XferSize:    8192,
		rng:         rng,
		xid:         uint32(rng.Int63()),
		attrs:       make(map[string]*attrEntry),
		data:        make(map[string]float64),
		names:       make(map[nameKey]nameEntry),
	}
}

// roundTrip performs one wire call: dispatch through the nfsiod pool,
// execute on the server, and emit both records. It returns the decoded
// result and the client-observed completion time.
func (c *Client) roundTrip(t float64, v3proc uint32, v3args any) (any, float64) {
	c.xid++
	wireT := c.Pool.Dispatch(t)

	version, proc, args := c.translate(v3proc, v3args)
	callRec, callSize := buildCallRecord(wireT, c.IP, c.Port, c.ServerIP,
		c.Proto, c.xid, version, proc, c.UID, c.GID, args)
	c.Sink.Record(callRec, callSize)

	var res any
	if version == nfs.V3 {
		res = c.Server.HandleV3(proc, args)
	} else {
		res = c.Server.HandleV2(proc, args)
	}
	replyT := wireT + c.RTT + c.rng.ExpFloat64()*0.0002
	replyRec, replySize := buildReplyRecord(replyT, c.IP, c.Port, c.ServerIP,
		c.Proto, c.xid, version, proc, res)
	c.Sink.Record(replyRec, replySize)
	c.emitWire(wireT, replyT, version, proc, args, res, c.xid)
	return res, replyT
}

// translate maps a v3 procedure and args onto the client's protocol
// version. V3 clients pass through; V2 clients narrow.
func (c *Client) translate(proc uint32, args any) (uint32, uint32, any) {
	if c.Version == nfs.V3 {
		return nfs.V3, proc, args
	}
	switch proc {
	case nfs.V3Getattr:
		return nfs.V2, nfs.V2Getattr, args
	case nfs.V3Setattr:
		a := args.(*nfs.SetattrArgs3)
		return nfs.V2, nfs.V2Setattr, &nfs.SetattrArgs2{FH: a.FH, Attr: a.Attr}
	case nfs.V3Lookup:
		return nfs.V2, nfs.V2Lookup, args
	case nfs.V3Access:
		// No ACCESS in v2: clients use GETATTR for permission checks.
		a := args.(*nfs.AccessArgs3)
		return nfs.V2, nfs.V2Getattr, &nfs.GetattrArgs3{FH: a.FH}
	case nfs.V3Read:
		a := args.(*nfs.ReadArgs3)
		return nfs.V2, nfs.V2Read, &nfs.ReadArgs2{FH: a.FH, Offset: uint32(a.Offset),
			Count: a.Count, TotalCount: a.Count}
	case nfs.V3Write:
		a := args.(*nfs.WriteArgs3)
		return nfs.V2, nfs.V2Write, &nfs.WriteArgs2{FH: a.FH, Offset: uint32(a.Offset),
			Data: server.Filler(int(a.Count))}
	case nfs.V3Create:
		a := args.(*nfs.CreateArgs3)
		return nfs.V2, nfs.V2Create, &nfs.CreateArgs2{Where: a.Where, Attr: a.Attr}
	case nfs.V3Mkdir:
		a := args.(*nfs.MkdirArgs3)
		return nfs.V2, nfs.V2Mkdir, &nfs.CreateArgs2{Where: a.Where, Attr: a.Attr}
	case nfs.V3Remove:
		return nfs.V2, nfs.V2Remove, args
	case nfs.V3Rmdir:
		return nfs.V2, nfs.V2Rmdir, args
	case nfs.V3Rename:
		return nfs.V2, nfs.V2Rename, args
	case nfs.V3Link:
		return nfs.V2, nfs.V2Link, args
	case nfs.V3Symlink:
		return nfs.V2, nfs.V2Symlink, args
	case nfs.V3Readdir:
		a := args.(*nfs.ReaddirArgs3)
		return nfs.V2, nfs.V2Readdir, &nfs.ReaddirArgs2{Dir: a.Dir,
			Cookie: uint32(a.Cookie), Count: a.MaxCount}
	case nfs.V3Fsstat:
		return nfs.V2, nfs.V2Statfs, args
	case nfs.V3Commit:
		// No COMMIT in v2 (writes are synchronous); issue a GETATTR to
		// keep the call visible, as some clients did.
		a := args.(*nfs.CommitArgs3)
		return nfs.V2, nfs.V2Getattr, &nfs.GetattrArgs3{FH: a.FH}
	default:
		return nfs.V2, nfs.V2Null, nil
	}
}

// --- Raw wire operations (always hit the network) ---

// Getattr fetches attributes, updating the attribute cache.
func (c *Client) Getattr(t float64, fh nfs.FH) (*nfs.Fattr, float64) {
	res, rt := c.roundTrip(t, nfs.V3Getattr, &nfs.GetattrArgs3{FH: fh})
	attr := attrFromRes(res)
	c.noteAttr(fh, rt, attr)
	return attr, rt
}

// attrFromRes extracts attributes from either version's getattr result.
func attrFromRes(res any) *nfs.Fattr {
	switch r := res.(type) {
	case *nfs.GetattrRes3:
		return r.Attr
	case *nfs.AttrStatRes2:
		return r.Attr
	}
	return nil
}

func (c *Client) noteAttr(fh nfs.FH, t float64, attr *nfs.Fattr) {
	if attr == nil {
		delete(c.attrs, fh.Key())
		return
	}
	c.attrs[fh.Key()] = &attrEntry{checkedAt: t, mtime: attr.Mtime.Seconds(), size: attr.Size}
}

// Access performs a permission check (GETATTR on v2).
func (c *Client) Access(t float64, fh nfs.FH) float64 {
	_, rt := c.roundTrip(t, nfs.V3Access, &nfs.AccessArgs3{FH: fh, Access: 0x3F})
	return rt
}

// Lookup resolves name in dir on the wire, updating the name cache.
func (c *Client) Lookup(t float64, dir nfs.FH, name string) (nfs.FH, *nfs.Fattr, float64) {
	res, rt := c.roundTrip(t, nfs.V3Lookup, &nfs.LookupArgs3{Dir: dir, Name: name})
	var fh nfs.FH
	var attr *nfs.Fattr
	switch r := res.(type) {
	case *nfs.LookupRes3:
		if r.Status == nfs.OK {
			fh, attr = r.FH, r.Attr
		}
	case *nfs.DirOpRes2:
		if r.Status == nfs.OK {
			fh, attr = r.FH, r.Attr
		}
	}
	if fh != nil {
		c.names[nameKey{dir.Key(), name}] = nameEntry{fh: fh, checkedAt: rt}
		c.noteAttr(fh, rt, attr)
	}
	return fh, attr, rt
}

// Read issues one wire READ.
func (c *Client) Read(t float64, fh nfs.FH, offset uint64, count uint32) (uint32, bool, float64) {
	res, rt := c.roundTrip(t, nfs.V3Read, &nfs.ReadArgs3{FH: fh, Offset: offset, Count: count})
	switch r := res.(type) {
	case *nfs.ReadRes3:
		return r.Count, r.EOF, rt
	case *nfs.ReadRes2:
		return uint32(len(r.Data)), false, rt
	}
	return 0, false, rt
}

// Write issues one wire WRITE.
func (c *Client) Write(t float64, fh nfs.FH, offset uint64, count uint32, stable uint32) float64 {
	res, rt := c.roundTrip(t, nfs.V3Write, &nfs.WriteArgs3{
		FH: fh, Offset: offset, Count: count, Stable: stable,
		Data: server.Filler(int(count))})
	if r, ok := res.(*nfs.WriteRes3); ok && r.Wcc != nil && r.Wcc.After != nil {
		// Own writes refresh the cached mtime so they do not trigger
		// self-invalidation.
		c.noteAttr(fh, rt, r.Wcc.After)
		c.data[fh.Key()] = r.Wcc.After.Mtime.Seconds()
	}
	if r, ok := res.(*nfs.AttrStatRes2); ok && r.Attr != nil {
		c.noteAttr(fh, rt, r.Attr)
		c.data[fh.Key()] = r.Attr.Mtime.Seconds()
	}
	return rt
}

// Commit flushes unstable writes (GETATTR on v2).
func (c *Client) Commit(t float64, fh nfs.FH) float64 {
	_, rt := c.roundTrip(t, nfs.V3Commit, &nfs.CommitArgs3{FH: fh, Offset: 0, Count: 0})
	return rt
}

// Create makes a file and caches its handle.
func (c *Client) Create(t float64, dir nfs.FH, name string, truncate bool) (nfs.FH, float64) {
	attr := nfs.Sattr{UID: &c.UID, GID: &c.GID}
	if truncate {
		zero := uint64(0)
		attr.Size = &zero
	}
	res, rt := c.roundTrip(t, nfs.V3Create, &nfs.CreateArgs3{
		Where: nfs.DirOpArgs3{Dir: dir, Name: name}, Attr: attr})
	var fh nfs.FH
	switch r := res.(type) {
	case *nfs.CreateRes3:
		if r.Status == nfs.OK {
			fh = r.FH
			c.noteAttr(fh, rt, r.Attr)
		}
	case *nfs.DirOpRes2:
		if r.Status == nfs.OK {
			fh = r.FH
			c.noteAttr(fh, rt, r.Attr)
		}
	}
	if fh != nil {
		c.names[nameKey{dir.Key(), name}] = nameEntry{fh: fh, checkedAt: rt}
	}
	return fh, rt
}

// Remove unlinks a file and invalidates caches.
func (c *Client) Remove(t float64, dir nfs.FH, name string) (uint32, float64) {
	res, rt := c.roundTrip(t, nfs.V3Remove, &nfs.DirOpArgs3{Dir: dir, Name: name})
	k := nameKey{dir.Key(), name}
	if ent, ok := c.names[k]; ok {
		delete(c.attrs, ent.fh.Key())
		delete(c.data, ent.fh.Key())
		delete(c.names, k)
	}
	switch r := res.(type) {
	case *nfs.RemoveRes3:
		return r.Status, rt
	case *nfs.StatusRes2:
		return r.Status, rt
	}
	return nfs.ErrIO, rt
}

// Rename moves a file, invalidating name caches.
func (c *Client) Rename(t float64, fromDir nfs.FH, fromName string, toDir nfs.FH, toName string) float64 {
	_, rt := c.roundTrip(t, nfs.V3Rename, &nfs.RenameArgs3{
		From: nfs.DirOpArgs3{Dir: fromDir, Name: fromName},
		To:   nfs.DirOpArgs3{Dir: toDir, Name: toName}})
	delete(c.names, nameKey{fromDir.Key(), fromName})
	delete(c.names, nameKey{toDir.Key(), toName})
	return rt
}

// SetattrTruncate truncates a file to size.
func (c *Client) SetattrTruncate(t float64, fh nfs.FH, size uint64) float64 {
	res, rt := c.roundTrip(t, nfs.V3Setattr, &nfs.SetattrArgs3{FH: fh,
		Attr: nfs.Sattr{Size: &size}})
	if r, ok := res.(*nfs.SetattrRes3); ok && r.Wcc != nil {
		c.noteAttr(fh, rt, r.Wcc.After)
	}
	return rt
}

// Readdir lists a directory (one wire call per page).
func (c *Client) Readdir(t float64, dir nfs.FH) ([]nfs.DirEntry, float64) {
	var all []nfs.DirEntry
	cookie := uint64(0)
	for {
		res, rt := c.roundTrip(t, nfs.V3Readdir, &nfs.ReaddirArgs3{
			Dir: dir, Cookie: cookie, MaxCount: 4096})
		t = rt
		switch r := res.(type) {
		case *nfs.ReaddirRes3:
			all = append(all, r.Entries...)
			if r.Status != nfs.OK || r.EOF || len(r.Entries) == 0 {
				return all, t
			}
			cookie = r.Entries[len(r.Entries)-1].Cookie
		case *nfs.ReaddirRes2:
			all = append(all, r.Entries...)
			if r.Status != nfs.OK || r.EOF || len(r.Entries) == 0 {
				return all, t
			}
			cookie = r.Entries[len(r.Entries)-1].Cookie
		default:
			return all, t
		}
	}
}

// --- Cached operations (may be absorbed by the client cache) ---

// LookupCached resolves a name, going to the wire only when the name
// cache entry is missing or stale.
func (c *Client) LookupCached(t float64, dir nfs.FH, name string) (nfs.FH, float64) {
	if ent, ok := c.names[nameKey{dir.Key(), name}]; ok && t-ent.checkedAt < c.AttrTimeout {
		return ent.fh, t
	}
	fh, _, rt := c.Lookup(t, dir, name)
	return fh, rt
}

// StatCached checks a file's attributes, going to the wire only when the
// cached attributes have expired. It reports whether the file changed
// since the data cache last loaded it.
func (c *Client) StatCached(t float64, fh nfs.FH) (changed bool, rt float64) {
	k := fh.Key()
	ent, ok := c.attrs[k]
	if ok && t-ent.checkedAt < c.AttrTimeout {
		cachedMtime, has := c.data[k]
		return !has || cachedMtime != ent.mtime, t
	}
	attr, rt := c.Getattr(t, fh)
	if attr == nil {
		return true, rt
	}
	cachedMtime, has := c.data[k]
	return !has || cachedMtime != attr.Mtime.Seconds(), rt
}

// ReadFile reads a whole file of the given size through the data cache:
// if the cached copy is still valid the only wire traffic is the
// validation GETATTR; otherwise every block is fetched (8 KB requests)
// and the copy is marked cached. Returns bytes actually transferred.
func (c *Client) ReadFile(t float64, fh nfs.FH, size uint64) (wireBytes uint64, rt float64) {
	changed, rt := c.StatCached(t, fh)
	if !changed {
		return 0, rt
	}
	wireBytes, rt = c.readRange(rt, fh, 0, size)
	if ent, ok := c.attrs[fh.Key()]; ok {
		c.data[fh.Key()] = ent.mtime
	}
	return wireBytes, rt
}

// readRange fetches [offset, offset+n) in XferSize wire reads. Requests
// in a batch are issued back-to-back (read-ahead keeps several
// outstanding), which is precisely where nfsiod reordering bites.
func (c *Client) readRange(t float64, fh nfs.FH, offset, n uint64) (uint64, float64) {
	chunk := c.XferSize
	if chunk == 0 {
		chunk = 8192
	}
	var moved uint64
	issue := t
	last := t
	for got := uint64(0); got < n; got += chunk {
		count := uint32(chunk)
		if rem := n - got; rem < chunk {
			count = uint32(rem)
		}
		cnt, eof, rt := c.Read(issue, fh, offset+got, count)
		moved += uint64(cnt)
		last = rt
		// Read-ahead pipelining: issue the next request ~60µs after
		// the previous one, not after its reply.
		issue += 0.00006
		if eof {
			break
		}
	}
	return moved, last
}

// ReadRange reads an arbitrary range through the wire (no data cache),
// for partial-file access patterns.
func (c *Client) ReadRange(t float64, fh nfs.FH, offset, n uint64) (uint64, float64) {
	return c.readRange(t, fh, offset, n)
}

// Append writes n bytes at the end of the file (cached size tracks the
// server's), using 8 KB unstable writes and a trailing commit on v3.
func (c *Client) Append(t float64, fh nfs.FH, n uint64) float64 {
	size := uint64(0)
	if ent, ok := c.attrs[fh.Key()]; ok {
		size = ent.size
	}
	rt := c.WriteRange(t, fh, size, n)
	return rt
}

// WriteRange writes [offset, offset+n) in XferSize chunks.
func (c *Client) WriteRange(t float64, fh nfs.FH, offset, n uint64) float64 {
	chunk := c.XferSize
	if chunk == 0 {
		chunk = 8192
	}
	issue := t
	last := t
	stable := uint32(nfs.Unstable)
	if n <= chunk {
		stable = nfs.FileSync // small writes go synchronous
	}
	for put := uint64(0); put < n; put += chunk {
		count := uint32(chunk)
		if rem := n - put; rem < chunk {
			count = uint32(rem)
		}
		last = c.Write(issue, fh, offset+put, count, stable)
		issue += 0.00008
	}
	if stable == nfs.Unstable && c.Version == nfs.V3 {
		last = c.Commit(last, fh)
	}
	return last
}

// InvalidateAttrs expires the attribute cache entry for fh, modeling
// cross-client invalidation signals (none exist in NFS; this models the
// timeout path deterministically in tests).
func (c *Client) InvalidateAttrs(fh nfs.FH) {
	delete(c.attrs, fh.Key())
}
