package client

import (
	"repro/internal/core"
	"repro/internal/nfs"
	"repro/internal/rpc"
	"repro/internal/wire"
	"repro/internal/xdr"
)

// PacketSink receives fully framed packets with their wire times — the
// input a real sniffer would see. Wire together with pcap.Writer to
// produce capture files.
type PacketSink interface {
	Packet(t float64, frame []byte)
}

// WireTap attaches to a Client and emits byte-faithful packets for every
// call and reply, over UDP (with IP fragmentation at the configured MTU)
// or TCP (with RPC record marking and sequence numbers).
type WireTap struct {
	Sink PacketSink
	// MTU controls UDP fragmentation (wire.StandardMTU or
	// wire.JumboMTU).
	MTU int

	clientIP wire.IP
	serverIP wire.IP
	ipid     uint16
	// TCP sequence state per direction.
	cliSeq  uint32
	srvSeq  uint32
	synSent bool
}

// NewWireTap builds a tap for a client/server IP pair.
func NewWireTap(sink PacketSink, clientIP, serverIP uint32, mtu int) *WireTap {
	if mtu <= 0 {
		mtu = wire.StandardMTU
	}
	return &WireTap{
		Sink: sink, MTU: mtu,
		clientIP: wire.IPFromUint32(clientIP),
		serverIP: wire.IPFromUint32(serverIP),
		cliSeq:   1000, srvSeq: 5000,
	}
}

// NFSPort is the well-known NFS server port.
const NFSPort = 2049

// emitCall frames one RPC call message.
func (w *WireTap) emitCall(t float64, proto byte, port uint16, xid, version, proc uint32,
	uid, gid uint32, argsBytes []byte) {

	cred := xdr.NewEncoder(64)
	(&rpc.AuthSysBody{Stamp: uint32(t), MachineName: "client",
		UID: uid, GID: gid, GIDs: []uint32{gid}}).Encode(cred)
	e := xdr.NewEncoder(len(argsBytes) + 128)
	rpc.EncodeCall(e, &rpc.CallHeader{
		XID: xid, Program: rpc.ProgramNFS, Version: version, Proc: proc,
		Cred: rpc.OpaqueAuth{Flavor: rpc.AuthSys, Body: cred.Bytes()},
		Verf: rpc.OpaqueAuth{Flavor: rpc.AuthNone},
		Args: argsBytes,
	})
	w.send(t, proto, true, port, e.Bytes())
}

// emitReply frames one RPC accepted/success reply message.
func (w *WireTap) emitReply(t float64, proto byte, port uint16, xid uint32, resBytes []byte) {
	e := xdr.NewEncoder(len(resBytes) + 64)
	rpc.EncodeReply(e, &rpc.ReplyHeader{
		XID: xid, ReplyStat: rpc.MsgAccepted, AcceptStat: rpc.Success,
		Verf: rpc.OpaqueAuth{Flavor: rpc.AuthNone}, Results: resBytes,
	})
	w.send(t, proto, false, port, e.Bytes())
}

func (w *WireTap) send(t float64, proto byte, fromClient bool, port uint16, msg []byte) {
	src, dst := w.clientIP, w.serverIP
	sport, dport := port, uint16(NFSPort)
	if !fromClient {
		src, dst = dst, src
		sport, dport = dport, sport
	}
	if proto == core.ProtoUDP {
		w.ipid++
		for _, frame := range wire.FragmentUDP(src, dst, sport, dport, w.ipid, msg, w.MTU) {
			w.Sink.Packet(t, frame)
		}
		return
	}
	// TCP: open the connection lazily with a SYN in each direction so
	// stream reassembly has a base sequence.
	if !w.synSent {
		w.synSent = true
		w.Sink.Packet(t, wire.BuildTCP(w.clientIP, w.serverIP, port, NFSPort, 0,
			w.cliSeq, 0, wire.FlagSYN, nil))
		w.Sink.Packet(t, wire.BuildTCP(w.serverIP, w.clientIP, NFSPort, port, 0,
			w.srvSeq, w.cliSeq+1, wire.FlagSYN|wire.FlagACK, nil))
		w.cliSeq++
		w.srvSeq++
	}
	marked := rpc.MarkRecord(msg)
	// Segment to MSS-sized chunks.
	mss := w.MTU - wire.IPv4HeaderLen - wire.TCPHeaderLen
	for off := 0; off < len(marked); off += mss {
		end := off + mss
		if end > len(marked) {
			end = len(marked)
		}
		seg := marked[off:end]
		w.ipid++
		if fromClient {
			w.Sink.Packet(t, wire.BuildTCP(src, dst, sport, dport, w.ipid,
				w.cliSeq, w.srvSeq, wire.FlagACK|wire.FlagPSH, seg))
			w.cliSeq += uint32(len(seg))
		} else {
			w.Sink.Packet(t, wire.BuildTCP(src, dst, sport, dport, w.ipid,
				w.srvSeq, w.cliSeq, wire.FlagACK|wire.FlagPSH, seg))
			w.srvSeq += uint32(len(seg))
		}
	}
}

// EnableWireTap attaches packet emission to the client: records continue
// to flow to its Sink, and packets flow to the tap.
func (c *Client) EnableWireTap(tap *WireTap) {
	c.tap = tap
}

// emitWire is called from roundTrip when a tap is attached.
func (c *Client) emitWire(callT, replyT float64, version, proc uint32, args, res any, xid uint32) {
	if c.tap == nil {
		return
	}
	ea := xdr.NewEncoder(256)
	if version == nfs.V3 {
		if err := nfs.EncodeArgs3(ea, proc, args); err != nil {
			return
		}
	} else {
		if err := nfs.EncodeArgs2(ea, proc, args); err != nil {
			return
		}
	}
	c.tap.emitCall(callT, c.Proto, c.Port, xid, version, proc, c.UID, c.GID, ea.Bytes())
	er := xdr.NewEncoder(256)
	if version == nfs.V3 {
		if err := nfs.EncodeRes3(er, proc, res); err != nil {
			return
		}
	} else {
		if err := nfs.EncodeRes2(er, proc, res); err != nil {
			return
		}
	}
	c.tap.emitReply(replyT, c.Proto, c.Port, xid, er.Bytes())
}
