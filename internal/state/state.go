// Package state implements the versioned binary container for
// serialized reducer state — the on-disk form that lets an analysis
// fan out across processes and machines and merge back byte-identically
// (nfsanalyze -partial / -merge / -coordinator), and that gives long
// runs checkpoint/resume for free.
//
// A state file is:
//
//	magic "nfsstate" | format version (uint16 LE)
//	body checksum: SHA-256 over everything after this field (32 bytes)
//	file-handle dictionary: uvarint count, then that many strings
//	procedure dictionary:   uvarint count, then that many strings
//	section count, then sections: name string, uvarint length, payload
//
// Interned IDs (core.FH, core.ProcID) are process-local — they depend
// on arrival order — so they never appear in a file. Sections reference
// handles and procedures by dense file-local dictionary indexes, in
// first-use order; the dictionaries carry the canonical spellings, and
// the reader re-interns them in the receiving process. Strings are
// uvarint length + bytes; integers are varints (zigzag for signed);
// floats are 8 little-endian bytes of math.Float64bits, so values round
// trip bit-exactly and merged output stays byte-identical.
//
// Decoding is defensive: the body checksum catches any flipped bit up
// front, every read is bounds-checked, every count is validated against
// the bytes that remain, and every failure wraps ErrCorrupt (or
// *VersionError for a future-format file) — hostile input yields a
// structured error, never a panic and never a silent partial merge.
package state

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/core"
)

// Version is the current file format version. A reader rejects any file
// with a newer version (see VersionError); older versions, when they
// exist, decode via compatibility paths.
const Version = 1

// magic identifies a state file; it is exactly 8 bytes.
const magic = "nfsstate"

// ErrCorrupt is wrapped by every decode failure caused by malformed
// input, so callers (and the fuzz target) can classify errors with
// errors.Is.
var ErrCorrupt = errors.New("corrupt state file")

// VersionError reports a state file written by a newer format than this
// build supports.
type VersionError struct {
	Got, Supported uint16
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("state file format version %d is newer than supported version %d; upgrade the reader", e.Got, e.Supported)
}

// corruptf builds an ErrCorrupt-wrapping error.
func corruptf(format string, args ...interface{}) error {
	return fmt.Errorf("state: "+format+": %w", append(args, ErrCorrupt)...)
}

// Encoder builds a state file in memory: sections are buffered so the
// dictionaries (which grow as sections reference handles and
// procedures) can be written first, where the reader needs them.
type Encoder struct {
	names    []string
	payloads [][]byte
	cur      []byte

	fhIDs   map[core.FH]uint64
	fhs     []core.FH
	procIDs map[core.ProcID]uint64
	procs   []core.ProcID
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder {
	return &Encoder{
		fhIDs:   make(map[core.FH]uint64),
		procIDs: make(map[core.ProcID]uint64),
	}
}

// Section starts a new named section; subsequent writes go to it until
// the next Section or Flush.
func (e *Encoder) Section(name string) {
	e.closeSection()
	e.names = append(e.names, name)
	e.cur = nil
}

func (e *Encoder) closeSection() {
	if len(e.names) > len(e.payloads) {
		e.payloads = append(e.payloads, e.cur)
		e.cur = nil
	}
}

// Uvarint writes an unsigned varint.
func (e *Encoder) Uvarint(v uint64) { e.cur = binary.AppendUvarint(e.cur, v) }

// Varint writes a signed (zigzag) varint.
func (e *Encoder) Varint(v int64) { e.cur = binary.AppendVarint(e.cur, v) }

// F64 writes a float64 as its 8 IEEE-754 bits, little endian.
func (e *Encoder) F64(v float64) {
	e.cur = binary.LittleEndian.AppendUint64(e.cur, math.Float64bits(v))
}

// Bool writes one byte, 0 or 1.
func (e *Encoder) Bool(v bool) {
	if v {
		e.cur = append(e.cur, 1)
	} else {
		e.cur = append(e.cur, 0)
	}
}

// Bytes writes a length-prefixed byte string.
func (e *Encoder) Bytes(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.cur = append(e.cur, b...)
}

// String writes a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.cur = append(e.cur, s...)
}

// FH writes a file handle as its file-local dictionary index, assigned
// in first-use order. The handle's canonical spelling lands in the
// dictionary, so the ID survives the process boundary.
func (e *Encoder) FH(fh core.FH) {
	id, ok := e.fhIDs[fh]
	if !ok {
		id = uint64(len(e.fhs))
		e.fhIDs[fh] = id
		e.fhs = append(e.fhs, fh)
	}
	e.Uvarint(id)
}

// Proc writes a procedure as its file-local dictionary index.
func (e *Encoder) Proc(p core.ProcID) {
	id, ok := e.procIDs[p]
	if !ok {
		id = uint64(len(e.procs))
		e.procIDs[p] = id
		e.procs = append(e.procs, p)
	}
	e.Uvarint(id)
}

// Flush writes the complete file: header, body checksum, dictionaries,
// then every section in the order they were declared.
func (e *Encoder) Flush(w io.Writer) error {
	e.closeSection()
	var body []byte
	body = binary.AppendUvarint(body, uint64(len(e.fhs)))
	for _, fh := range e.fhs {
		s := fh.String()
		body = binary.AppendUvarint(body, uint64(len(s)))
		body = append(body, s...)
	}
	body = binary.AppendUvarint(body, uint64(len(e.procs)))
	for _, p := range e.procs {
		s := p.String()
		body = binary.AppendUvarint(body, uint64(len(s)))
		body = append(body, s...)
	}
	body = binary.AppendUvarint(body, uint64(len(e.names)))
	for i, name := range e.names {
		body = binary.AppendUvarint(body, uint64(len(name)))
		body = append(body, name...)
		body = binary.AppendUvarint(body, uint64(len(e.payloads[i])))
		body = append(body, e.payloads[i]...)
	}
	sum := sha256.Sum256(body)
	out := make([]byte, 0, len(magic)+2+len(sum)+len(body))
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint16(out, Version)
	out = append(out, sum[:]...)
	out = append(out, body...)
	_, err := w.Write(out)
	return err
}

// File is a parsed state file: dictionaries plus an index of named
// sections. Dictionary entries are interned lazily, on first reference
// from a section, so a file that merely mentions many handles costs
// only its own bytes until they are actually used.
type File struct {
	fhSpell   []string
	fhCache   []core.FH
	fhValid   []bool
	procSpell []string
	procCache []core.ProcID
	procValid []bool

	names    []string
	payloads [][]byte
}

// ReadFile parses a complete state file from r.
func ReadFile(r io.Reader) (*File, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	const headerLen = len(magic) + 2 + sha256.Size
	if len(data) < headerLen {
		return nil, corruptf("file too short for header (%d bytes)", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, corruptf("bad magic %q: not a state file", data[:len(magic)])
	}
	version := binary.LittleEndian.Uint16(data[len(magic) : len(magic)+2])
	if version > Version {
		return nil, &VersionError{Got: version, Supported: Version}
	}
	var want [sha256.Size]byte
	copy(want[:], data[len(magic)+2:headerLen])
	if sha256.Sum256(data[headerLen:]) != want {
		return nil, corruptf("body checksum mismatch: file is damaged")
	}
	d := &Decoder{name: "header", b: data, off: headerLen}

	f := &File{}
	f.fhSpell, err = d.stringList("file-handle dictionary")
	if err != nil {
		return nil, err
	}
	f.procSpell, err = d.stringList("procedure dictionary")
	if err != nil {
		return nil, err
	}
	f.fhCache = make([]core.FH, len(f.fhSpell))
	f.fhValid = make([]bool, len(f.fhSpell))
	f.procCache = make([]core.ProcID, len(f.procSpell))
	f.procValid = make([]bool, len(f.procSpell))

	n := d.Count("section count")
	for i := 0; i < n && d.err == nil; i++ {
		name := d.String("section name")
		plen := d.Count("section length")
		if d.err != nil {
			break
		}
		f.names = append(f.names, name)
		f.payloads = append(f.payloads, d.b[d.off:d.off+plen])
		d.off += plen
	}
	if d.err != nil {
		return nil, d.err
	}
	return f, nil
}

// stringList reads a count-prefixed list of strings.
func (d *Decoder) stringList(what string) ([]string, error) {
	n := d.Count(what + " count")
	if d.err != nil {
		return nil, d.err
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.String(what+" entry"))
		if d.err != nil {
			return nil, d.err
		}
	}
	return out, nil
}

// Sections lists the section names in file order (duplicates allowed).
func (f *File) Sections() []string { return append([]string(nil), f.names...) }

// Section returns a decoder over the first section with the given name,
// or ok=false if the file has none.
func (f *File) Section(name string) (*Decoder, bool) {
	for i, n := range f.names {
		if n == name {
			return &Decoder{f: f, name: name, b: f.payloads[i]}, true
		}
	}
	return nil, false
}

// Decoder reads one section's payload with a sticky error: after any
// failure every subsequent read is a no-op returning zero values, and
// Err reports the first failure. Nothing here panics on malformed
// input.
type Decoder struct {
	f    *File
	name string
	b    []byte
	off  int
	err  error
}

// Err reports the first decode failure, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining reports the unread bytes left in the section.
func (d *Decoder) Remaining() int { return len(d.b) - d.off }

// Failf records a semantic decode failure — a value that parsed but is
// invalid (config mismatch, out-of-range index). It wraps ErrCorrupt
// like every other decode error and is sticky the same way.
func (d *Decoder) Failf(format string, args ...interface{}) {
	d.fail(format, args...)
}

func (d *Decoder) fail(format string, args ...interface{}) {
	if d.err == nil {
		d.err = corruptf("section %q: "+format, append([]interface{}{d.name}, args...)...)
	}
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("truncated or overlong uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Varint reads a signed (zigzag) varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("truncated or overlong varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// F64 reads a float64 written by Encoder.F64.
func (d *Decoder) F64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.fail("truncated float64 at offset %d", d.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

// Bool reads one byte as a boolean.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.b) {
		d.fail("truncated boolean at offset %d", d.off)
		return false
	}
	v := d.b[d.off]
	d.off++
	return v != 0
}

// Count reads a uvarint that counts elements still to be decoded and
// validates it against the bytes remaining (every element costs at
// least one byte), so hostile counts cannot drive huge allocations.
func (d *Decoder) Count(what string) int {
	v := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.b)-d.off) {
		d.fail("%s %d exceeds %d remaining bytes", what, v, len(d.b)-d.off)
		return 0
	}
	return int(v)
}

// Bytes reads a length-prefixed byte string (a view into the file
// buffer, not a copy).
func (d *Decoder) Bytes() []byte {
	n := d.Count("byte-string length")
	if d.err != nil {
		return nil
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}

// String reads a length-prefixed string.
func (d *Decoder) String(what string) string {
	n := d.Count(what + " length")
	if d.err != nil {
		return ""
	}
	v := string(d.b[d.off : d.off+n])
	d.off += n
	return v
}

// FH reads a file-local dictionary index and re-interns the spelling in
// this process, so the returned handle is valid here whatever process
// wrote the file.
func (d *Decoder) FH() core.FH {
	id := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if d.f == nil || id >= uint64(len(d.f.fhSpell)) {
		d.fail("file-handle index %d outside dictionary of %d", id, dictLen(d.f))
		return 0
	}
	if !d.f.fhValid[id] {
		d.f.fhCache[id] = core.InternFH(d.f.fhSpell[id])
		d.f.fhValid[id] = true
	}
	return d.f.fhCache[id]
}

func dictLen(f *File) int {
	if f == nil {
		return 0
	}
	return len(f.fhSpell)
}

// Proc reads a file-local procedure index and re-interns its name.
// Interning can fail (the procedure table is finite); that surfaces as
// a decode error.
func (d *Decoder) Proc() core.ProcID {
	id := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if d.f == nil || id >= uint64(len(d.f.procSpell)) {
		d.fail("procedure index %d outside dictionary", id)
		return 0
	}
	if !d.f.procValid[id] {
		p, err := core.InternProc(d.f.procSpell[id])
		if err != nil {
			d.fail("procedure %q: %v", d.f.procSpell[id], err)
			return 0
		}
		d.f.procCache[id] = p
		d.f.procValid[id] = true
	}
	return d.f.procCache[id]
}

// Finish reports an error if the section failed to decode or has
// trailing bytes — a length mismatch usually means a corrupt or
// truncated payload that happened to parse.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		d.fail("%d trailing bytes", len(d.b)-d.off)
	}
	return d.err
}
