package state

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
)

// encodeSample builds a small two-section file exercising every value
// type, including dictionary-interned handles and procedures.
func encodeSample(t *testing.T) []byte {
	t.Helper()
	fh := core.InternFH("deadbeef01")
	fh2 := core.InternFH("deadbeef02")
	proc, err := core.InternProc("read")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEncoder()
	e.Section("alpha")
	e.Uvarint(42)
	e.Varint(-7)
	e.F64(3.25)
	e.F64(math.Inf(1))
	e.Bool(true)
	e.Bool(false)
	e.String("hello")
	e.Bytes([]byte{1, 2, 3})
	e.FH(fh)
	e.FH(fh2)
	e.FH(fh) // repeat reuses the dictionary slot
	e.Proc(proc)
	e.Section("beta")
	e.Uvarint(7)
	var buf bytes.Buffer
	if err := e.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	data := encodeSample(t)
	f, err := ReadFile(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Sections(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("sections = %v", got)
	}
	d, ok := f.Section("alpha")
	if !ok {
		t.Fatal("no alpha section")
	}
	if v := d.Uvarint(); v != 42 {
		t.Fatalf("uvarint = %d", v)
	}
	if v := d.Varint(); v != -7 {
		t.Fatalf("varint = %d", v)
	}
	if v := d.F64(); v != 3.25 {
		t.Fatalf("f64 = %v", v)
	}
	if v := d.F64(); !math.IsInf(v, 1) {
		t.Fatalf("f64 inf = %v", v)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("bools corrupted")
	}
	if v := d.String("s"); v != "hello" {
		t.Fatalf("string = %q", v)
	}
	if v := d.Bytes(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Fatalf("bytes = %v", v)
	}
	fh := d.FH()
	fh2 := d.FH()
	fh3 := d.FH()
	if fh != fh3 || fh == fh2 {
		t.Fatalf("fh dictionary broken: %v %v %v", fh, fh2, fh3)
	}
	// Re-interning must recover the canonical spellings.
	if fh.String() != "deadbeef01" || fh2.String() != "deadbeef02" {
		t.Fatalf("fh spellings %q %q", fh.String(), fh2.String())
	}
	if p := d.Proc(); p.String() != "read" {
		t.Fatalf("proc = %q", p.String())
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	db, ok := f.Section("beta")
	if !ok {
		t.Fatal("no beta section")
	}
	if v := db.Uvarint(); v != 7 {
		t.Fatalf("beta uvarint = %d", v)
	}
	if err := db.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumCatchesBitFlip(t *testing.T) {
	data := encodeSample(t)
	// Flip one bit in every body byte position (past the header) and
	// check each damaged file is rejected as corrupt.
	const headerLen = len(magic) + 2 + 32
	for off := headerLen; off < len(data); off++ {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x10
		_, err := ReadFile(bytes.NewReader(bad))
		if err == nil {
			t.Fatalf("bit flip at %d accepted", off)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at %d: error %v does not wrap ErrCorrupt", off, err)
		}
	}
}

func TestTruncation(t *testing.T) {
	data := encodeSample(t)
	for n := 0; n < len(data); n += 7 {
		_, err := ReadFile(bytes.NewReader(data[:n]))
		if err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d: error %v does not wrap ErrCorrupt", n, err)
		}
	}
}

func TestBadMagic(t *testing.T) {
	data := encodeSample(t)
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	_, err := ReadFile(bytes.NewReader(bad))
	if err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: %v", err)
	}
}

func TestVersionSkew(t *testing.T) {
	data := encodeSample(t)
	future := append([]byte(nil), data...)
	binary.LittleEndian.PutUint16(future[len(magic):], Version+1)
	_, err := ReadFile(bytes.NewReader(future))
	if err == nil {
		t.Fatal("future version accepted")
	}
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("error %T is not *VersionError", err)
	}
	if ve.Got != Version+1 || ve.Supported != Version {
		t.Fatalf("VersionError = %+v", ve)
	}
	// The message names both versions, so operators know which side to
	// upgrade.
	msg := ve.Error()
	if !strings.Contains(msg, "version 2") || !strings.Contains(msg, "version 1") {
		t.Fatalf("message does not name both versions: %q", msg)
	}
}

func TestFinishRejectsTrailingBytes(t *testing.T) {
	data := encodeSample(t)
	f, err := ReadFile(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	d, _ := f.Section("alpha")
	d.Uvarint() // read only part of the section
	if err := d.Finish(); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing bytes accepted: %v", err)
	}
}

func TestStickyError(t *testing.T) {
	f := &File{}
	d := &Decoder{f: f, name: "t", b: []byte{0xff}} // truncated uvarint
	if d.Uvarint() != 0 || d.Err() == nil {
		t.Fatal("truncated uvarint not detected")
	}
	first := d.Err()
	// Every subsequent read is a zero-value no-op preserving the first
	// error.
	if d.Varint() != 0 || d.F64() != 0 || d.Bool() || d.String("s") != "" || d.FH() != 0 {
		t.Fatal("reads after failure returned nonzero")
	}
	if d.Err() != first {
		t.Fatalf("first error %v replaced by %v", first, d.Err())
	}
}

func TestCountRejectsOverflow(t *testing.T) {
	// A count far exceeding the remaining bytes must fail before any
	// allocation proportional to it.
	var b []byte
	b = binary.AppendUvarint(b, 1<<40)
	d := &Decoder{name: "t", b: b}
	if n := d.Count("entries"); n != 0 || d.Err() == nil {
		t.Fatalf("hostile count accepted: n=%d err=%v", n, d.Err())
	}
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("error %v does not wrap ErrCorrupt", d.Err())
	}
}

func TestDictionaryIndexOutOfRange(t *testing.T) {
	e := NewEncoder()
	e.Section("s")
	e.Uvarint(99) // pretend dictionary index with an empty dictionary
	var buf bytes.Buffer
	if err := e.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := f.Section("s")
	if d.FH() != 0 || d.Err() == nil || !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("out-of-range fh index: %v", d.Err())
	}
}

func TestEmptyFileRoundTrip(t *testing.T) {
	e := NewEncoder()
	var buf bytes.Buffer
	if err := e.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Sections()) != 0 {
		t.Fatalf("sections = %v", f.Sections())
	}
	if _, ok := f.Section("nope"); ok {
		t.Fatal("found a section in an empty file")
	}
}
