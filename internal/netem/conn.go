package netem

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// ConnConfig shapes a WrapConn impairment: added latency and jitter on
// every write, random whole-write drops (the connection is severed, as
// TCP cannot silently lose bytes), and a hard cut after a byte budget
// (models a worker or path dying mid-stream).
type ConnConfig struct {
	// Latency delays each Write by this much before the bytes move.
	Latency time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter).
	Jitter time.Duration
	// DropProb severs the connection with this probability per Write.
	DropProb float64
	// CutAfterBytes severs the connection once this many bytes have
	// been written through it (0 = never).
	CutAfterBytes int64
	// Seed makes the jitter and drop schedule reproducible.
	Seed int64
}

// Conn wraps a real net.Conn with the impairments in ConnConfig.
// Reads pass through untouched — the peer's writes carry the delays.
type Conn struct {
	net.Conn
	cfg ConnConfig

	mu      sync.Mutex
	rng     *rand.Rand
	written int64
	cut     bool
}

// WrapConn impairs an established connection.
func WrapConn(c net.Conn, cfg ConnConfig) *Conn {
	return &Conn{Conn: c, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Write delays, maybe severs, and otherwise forwards to the wrapped
// connection. Once severed every call fails with net.ErrClosed.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.cut {
		c.mu.Unlock()
		return 0, net.ErrClosed
	}
	delay := c.cfg.Latency
	if c.cfg.Jitter > 0 {
		delay += time.Duration(c.rng.Int63n(int64(c.cfg.Jitter)))
	}
	if c.cfg.DropProb > 0 && c.rng.Float64() < c.cfg.DropProb {
		// A probabilistic sever loses the whole write: nothing moves.
		c.cut = true
		c.mu.Unlock()
		c.Conn.Close()
		return 0, net.ErrClosed
	}
	n := len(p)
	cut := false
	if budget := c.cfg.CutAfterBytes; budget > 0 && c.written+int64(n) >= budget {
		// The budget cut delivers the prefix up to the budget, then
		// dies — the peer sees a mid-stream truncation.
		n = int(budget - c.written)
		cut = true
		c.cut = true
	}
	c.written += int64(n)
	c.mu.Unlock()

	if delay > 0 {
		time.Sleep(delay)
	}
	if n > 0 {
		if _, err := c.Conn.Write(p[:n]); err != nil {
			return 0, err
		}
	}
	if cut {
		c.Conn.Close()
		return n, net.ErrClosed
	}
	return n, nil
}

// Severed reports whether the impairment layer has cut the connection.
func (c *Conn) Severed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cut
}
