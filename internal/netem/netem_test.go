package netem

import "testing"

func TestMirrorPortNoLossUnderCapacity(t *testing.T) {
	m := NewMirrorPort()
	// 1000 × 1500-byte packets over one second = 1.5 MB/s ≪ 125 MB/s.
	for i := 0; i < 1000; i++ {
		if !m.Offer(float64(i)*0.001, 1500) {
			t.Fatal("drop under light load")
		}
	}
	if m.LossRate() != 0 {
		t.Fatalf("loss rate %v", m.LossRate())
	}
	if m.Offered() != 1000 || m.Dropped() != 0 {
		t.Fatalf("counters: %d %d", m.Offered(), m.Dropped())
	}
}

func TestMirrorPortDropsBursts(t *testing.T) {
	m := NewMirrorPort()
	// A burst of jumbo frames at effectively infinite rate overflows
	// the 256 KB buffer after ~28 frames.
	drops := 0
	for i := 0; i < 100; i++ {
		if !m.Offer(1.0, 9000) {
			drops++
		}
	}
	if drops == 0 {
		t.Fatal("no drops in an instantaneous 900 KB burst")
	}
	// After the queue drains, capture resumes.
	if !m.Offer(2.0, 9000) {
		t.Fatal("drop after queue drained")
	}
}

func TestMirrorPortHeavyOverloadApproaches10Percent(t *testing.T) {
	// Model the paper's condition: offered load ~10% above the port
	// rate for a sustained burst gives loss near the excess fraction.
	m := NewMirrorPort()
	rate := 137.5e6 // 10% over 125 MB/s
	pkt := 9000.0
	interval := pkt / rate
	n := 20000
	for i := 0; i < n; i++ {
		m.Offer(float64(i)*interval, int(pkt))
	}
	loss := m.LossRate()
	if loss < 0.03 || loss > 0.20 {
		t.Fatalf("loss %.3f outside plausible band for 10%% overload", loss)
	}
}

func TestLinkDeliversWithLatency(t *testing.T) {
	l := NewLink(0.001, 0, 0, 1)
	at, ok := l.Send(5.0)
	if !ok || at != 5.001 {
		t.Fatalf("arrival %v ok=%v", at, ok)
	}
}

func TestLinkDrops(t *testing.T) {
	l := NewLink(0, 0, 1.0, 1) // always drop
	if _, ok := l.Send(1); ok {
		t.Fatal("packet survived p=1 drop")
	}
	l2 := NewLink(0, 0, 0.5, 2)
	drops := 0
	for i := 0; i < 1000; i++ {
		if _, ok := l2.Send(float64(i)); !ok {
			drops++
		}
	}
	if drops < 400 || drops > 600 {
		t.Fatalf("p=0.5 dropped %d/1000", drops)
	}
}

func TestLinkJitterVaries(t *testing.T) {
	l := NewLink(0.001, 0.0005, 0, 3)
	seen := map[float64]bool{}
	for i := 0; i < 50; i++ {
		at, ok := l.Send(0)
		if !ok {
			t.Fatal("unexpected drop")
		}
		if at < 0.001 {
			t.Fatalf("arrival %v before base latency", at)
		}
		seen[at] = true
	}
	if len(seen) < 40 {
		t.Fatal("jitter not varying arrivals")
	}
}
