// Package netem emulates the network conditions that shaped the paper's
// traces: the mirror-port bandwidth bottleneck that lost up to 10% of
// packets during CAMPUS bursts (§4.1.4), plus simple latency/jitter/drop
// links for the isolated-network nfsiod experiment (§4.1.5).
package netem

import (
	"math/rand"
)

// MirrorPort models the single gigabit monitor port on a fully-switched
// network. Traffic offered faster than the port drains queues in the
// switch; when the queue overflows, the tracer never sees the packet.
type MirrorPort struct {
	// Rate is the port's drain rate in bytes/second.
	Rate float64
	// QueueBytes is the switch buffer dedicated to the mirror port.
	QueueBytes float64

	backlog float64
	lastT   float64
	offered int64
	dropped int64
}

// NewMirrorPort returns a gigabit mirror port with a 256 KB buffer.
func NewMirrorPort() *MirrorPort {
	return &MirrorPort{Rate: 125e6, QueueBytes: 256 << 10}
}

// Offer presents a packet of size bytes at time t (seconds). It reports
// whether the tracer captures the packet. Time must not go backwards.
func (m *MirrorPort) Offer(t float64, size int) bool {
	if t > m.lastT {
		m.backlog -= (t - m.lastT) * m.Rate
		if m.backlog < 0 {
			m.backlog = 0
		}
		m.lastT = t
	}
	m.offered++
	if m.backlog+float64(size) > m.QueueBytes {
		m.dropped++
		return false
	}
	m.backlog += float64(size)
	return true
}

// LossRate reports the fraction of offered packets dropped so far.
func (m *MirrorPort) LossRate() float64 {
	if m.offered == 0 {
		return 0
	}
	return float64(m.dropped) / float64(m.offered)
}

// Offered and Dropped report raw counters.
func (m *MirrorPort) Offered() int64 { return m.offered }

// Dropped reports the number of packets lost at the mirror port.
func (m *MirrorPort) Dropped() int64 { return m.dropped }

// Link models a point-to-point path with base latency, exponential
// jitter, and independent random drop. Used for the isolated-network
// experiments where the switch is not the bottleneck.
type Link struct {
	// Latency is the one-way base delay in seconds.
	Latency float64
	// Jitter is the mean of an added exponential delay (0 = none).
	Jitter float64
	// DropProb is the independent loss probability per packet.
	DropProb float64

	rng *rand.Rand
}

// NewLink builds a link with a deterministic random source.
func NewLink(latency, jitter, dropProb float64, seed int64) *Link {
	return &Link{Latency: latency, Jitter: jitter, DropProb: dropProb,
		rng: rand.New(rand.NewSource(seed))}
}

// Send returns the arrival time for a packet sent at t, or ok=false if
// the packet is dropped.
func (l *Link) Send(t float64) (arrival float64, ok bool) {
	if l.DropProb > 0 && l.rng.Float64() < l.DropProb {
		return 0, false
	}
	d := l.Latency
	if l.Jitter > 0 {
		d += l.rng.ExpFloat64() * l.Jitter
	}
	return t + d, true
}
