package netem

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipeEcho gives a wrapped conn whose peer slurps everything written,
// delivering the bytes (and the close) to the returned channels.
func pipeEcho(t *testing.T, cfg ConnConfig) (*Conn, <-chan []byte) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	got := make(chan []byte, 1)
	go func() {
		data, _ := io.ReadAll(b)
		got <- data
	}()
	return WrapConn(a, cfg), got
}

func TestConnPassthrough(t *testing.T) {
	c, got := pipeEcho(t, ConnConfig{Seed: 1})
	if n, err := c.Write([]byte("hello")); n != 5 || err != nil {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	c.Close()
	if string(<-got) != "hello" {
		t.Fatal("bytes did not pass through")
	}
	if c.Severed() {
		t.Fatal("clean conn reported severed")
	}
}

func TestConnLatencyDelaysWrites(t *testing.T) {
	c, _ := pipeEcho(t, ConnConfig{Latency: 30 * time.Millisecond, Seed: 1})
	start := time.Now()
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("write returned after %v, before the configured latency", d)
	}
	c.Close()
}

func TestConnJitterVariesDelay(t *testing.T) {
	c, _ := pipeEcho(t, ConnConfig{Jitter: 5 * time.Millisecond, Seed: 7})
	// With pure jitter the delays differ write to write; just assert
	// the writes all succeed and the conn stays healthy.
	for i := 0; i < 10; i++ {
		if _, err := c.Write([]byte("y")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	c.Close()
}

func TestConnCutAfterBytes(t *testing.T) {
	c, got := pipeEcho(t, ConnConfig{CutAfterBytes: 4, Seed: 1})
	n, err := c.Write([]byte("abcdef"))
	if n != 4 || !errors.Is(err, net.ErrClosed) {
		t.Fatalf("cut write: n=%d err=%v", n, err)
	}
	if !c.Severed() {
		t.Fatal("conn not marked severed after budget cut")
	}
	if string(<-got) != "abcd" {
		t.Fatal("peer did not receive the pre-cut prefix")
	}
	if _, err := c.Write([]byte("zz")); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("write after sever: %v", err)
	}
}

func TestConnCutExactlyAtBoundary(t *testing.T) {
	c, got := pipeEcho(t, ConnConfig{CutAfterBytes: 3, Seed: 1})
	n, err := c.Write([]byte("abc"))
	if n != 3 || !errors.Is(err, net.ErrClosed) {
		t.Fatalf("boundary write: n=%d err=%v", n, err)
	}
	if string(<-got) != "abc" {
		t.Fatal("peer missing the final budgeted bytes")
	}
}

func TestConnDropSevers(t *testing.T) {
	c, got := pipeEcho(t, ConnConfig{DropProb: 1, Seed: 1})
	n, err := c.Write([]byte("lost"))
	if n != 0 || !errors.Is(err, net.ErrClosed) {
		t.Fatalf("dropped write: n=%d err=%v", n, err)
	}
	if !c.Severed() {
		t.Fatal("conn not severed by drop")
	}
	if len(<-got) != 0 {
		t.Fatal("dropped bytes reached the peer")
	}
}

func TestConnDropProbabilityRespectsSeed(t *testing.T) {
	// With p=0.5 and a fixed seed, the sever point is deterministic:
	// two identically configured conns sever on the same write.
	sever := func() int {
		c, _ := pipeEcho(t, ConnConfig{DropProb: 0.5, Seed: 42})
		for i := 1; i <= 64; i++ {
			if _, err := c.Write([]byte("b")); err != nil {
				return i
			}
		}
		return 0
	}
	first, second := sever(), sever()
	if first == 0 || first != second {
		t.Fatalf("sever points %d vs %d not deterministic", first, second)
	}
}
