// Package pcap reads and writes libpcap capture files, the interchange
// format between the traffic generator and the sniffer. Both the classic
// microsecond format (magic 0xa1b2c3d4) and the nanosecond variant
// (0xa1b23c4d) are supported, in either byte order.
package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

const (
	// MagicMicro is the standard little-endian microsecond magic.
	MagicMicro = 0xa1b2c3d4
	// MagicNano is the nanosecond-resolution magic.
	MagicNano = 0xa1b23c4d

	// LinkTypeEthernet is the DLT for Ethernet frames.
	LinkTypeEthernet = 1

	fileHeaderLen   = 24
	packetHeaderLen = 16

	// DefaultSnapLen is the capture length written in file headers.
	DefaultSnapLen = 65535
)

// ErrBadMagic reports a file that is not a pcap capture.
var ErrBadMagic = errors.New("pcap: bad magic")

// Packet is one captured frame with its arrival time.
type Packet struct {
	// Time is seconds since the epoch of the trace (the capture
	// timestamp with full sub-second precision).
	Time float64
	// Data is the captured frame, starting at the Ethernet header.
	Data []byte
	// OrigLen is the original frame length; equal to len(Data) unless
	// the frame was snapped.
	OrigLen int
}

// Writer emits a pcap file. Create with NewWriter, which writes the file
// header immediately.
type Writer struct {
	w    *bufio.Writer
	nano bool
	n    int64
}

// NewWriter writes a pcap file header to w and returns a Writer. If nano
// is true the nanosecond format is used.
func NewWriter(w io.Writer, nano bool) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [fileHeaderLen]byte
	magic := uint32(MagicMicro)
	if nano {
		magic = MagicNano
	}
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	binary.LittleEndian.PutUint16(hdr[4:6], 2) // version major
	binary.LittleEndian.PutUint16(hdr[6:8], 4) // version minor
	// thiszone, sigfigs zero.
	binary.LittleEndian.PutUint32(hdr[16:20], DefaultSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw, nano: nano}, nil
}

// WritePacket appends one frame with the given timestamp in seconds.
func (w *Writer) WritePacket(t float64, data []byte) error {
	var hdr [packetHeaderLen]byte
	sec := uint32(t)
	frac := t - float64(sec)
	var sub uint32
	if w.nano {
		sub = uint32(frac * 1e9)
	} else {
		sub = uint32(frac * 1e6)
	}
	binary.LittleEndian.PutUint32(hdr[0:4], sec)
	binary.LittleEndian.PutUint32(hdr[4:8], sub)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(data)))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(data)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(data); err != nil {
		return err
	}
	w.n++
	return nil
}

// Count reports the number of packets written.
func (w *Writer) Count() int64 { return w.n }

// Flush drains buffered output to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader parses a pcap file.
type Reader struct {
	r       *bufio.Reader
	order   binary.ByteOrder
	nano    bool
	snapLen uint32
	link    uint32
}

// NewReader validates the file header of r and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [fileHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading file header: %w", err)
	}
	pr := &Reader{r: br}
	magicLE := binary.LittleEndian.Uint32(hdr[0:4])
	magicBE := binary.BigEndian.Uint32(hdr[0:4])
	switch {
	case magicLE == MagicMicro:
		pr.order = binary.LittleEndian
	case magicLE == MagicNano:
		pr.order, pr.nano = binary.LittleEndian, true
	case magicBE == MagicMicro:
		pr.order = binary.BigEndian
	case magicBE == MagicNano:
		pr.order, pr.nano = binary.BigEndian, true
	default:
		return nil, ErrBadMagic
	}
	pr.snapLen = pr.order.Uint32(hdr[16:20])
	pr.link = pr.order.Uint32(hdr[20:24])
	return pr, nil
}

// LinkType reports the capture's link layer (LinkTypeEthernet for files
// we write).
func (r *Reader) LinkType() uint32 { return r.link }

// Nano reports whether timestamps carry nanosecond resolution.
func (r *Reader) Nano() bool { return r.nano }

// Next returns the next packet, or io.EOF at end of file.
func (r *Reader) Next() (*Packet, error) {
	var hdr [packetHeaderLen]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, io.EOF // truncated trailer: treat as clean end
		}
		return nil, err
	}
	sec := r.order.Uint32(hdr[0:4])
	sub := r.order.Uint32(hdr[4:8])
	capLen := r.order.Uint32(hdr[8:12])
	origLen := r.order.Uint32(hdr[12:16])
	if capLen > 10*DefaultSnapLen {
		return nil, fmt.Errorf("pcap: implausible capture length %d", capLen)
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return nil, fmt.Errorf("pcap: reading packet body: %w", err)
	}
	t := float64(sec)
	if r.nano {
		t += float64(sub) / 1e9
	} else {
		t += float64(sub) / 1e6
	}
	return &Packet{Time: t, Data: data, OrigLen: int(origLen)}, nil
}
