package pcap

import (
	"bytes"
	"io"
	"testing"
)

func TestRoundTripMicro(t *testing.T) { testRoundTrip(t, false) }
func TestRoundTripNano(t *testing.T)  { testRoundTrip(t, true) }

func testRoundTrip(t *testing.T, nano bool) {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, nano)
	if err != nil {
		t.Fatal(err)
	}
	packets := []struct {
		t    float64
		data []byte
	}{
		{1003680000.000001, []byte{1, 2, 3}},
		{1003680000.5, bytes.Repeat([]byte{0xAA}, 1500)},
		{1003680001.25, bytes.Repeat([]byte{0xBB}, 9000)}, // jumbo
	}
	for _, p := range packets {
		if err := w.WritePacket(p.t, p.data); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Fatalf("count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeEthernet {
		t.Fatalf("link type %d", r.LinkType())
	}
	if r.Nano() != nano {
		t.Fatalf("nano = %v", r.Nano())
	}
	for i, want := range packets {
		p, err := r.Next()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if !bytes.Equal(p.Data, want.data) {
			t.Fatalf("packet %d: %d bytes, want %d", i, len(p.Data), len(want.data))
		}
		tol := 2e-6
		if nano {
			tol = 2e-9
		}
		if diff := p.Time - want.t; diff > tol || diff < -tol {
			t.Fatalf("packet %d: time %v, want %v", i, p.Time, want.t)
		}
		if p.OrigLen != len(want.data) {
			t.Fatalf("packet %d: origlen %d", i, p.OrigLen)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(bytes.Repeat([]byte{0x42}, 24))); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestShortHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestTruncatedPacketBody(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, false)
	w.WritePacket(1, []byte{1, 2, 3, 4})
	w.Flush()
	full := buf.Bytes()
	r, err := NewReader(bytes.NewReader(full[:len(full)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestTruncatedTrailerHeaderIsEOF(t *testing.T) {
	// A file cut mid-packet-header should read as a clean EOF (the
	// capture host crashed or the disk filled — common with long traces).
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, false)
	w.WritePacket(1, []byte{1, 2, 3, 4})
	w.Flush()
	full := buf.Bytes()
	r, _ := NewReader(bytes.NewReader(append(append([]byte{}, full...), 0, 0, 0)))
	if _, err := r.Next(); err != nil {
		t.Fatalf("first packet: %v", err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestImplausibleLength(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, false)
	w.Flush()
	// Hand-craft a packet header claiming a giant capture length.
	hdr := make([]byte, 16)
	hdr[8], hdr[9], hdr[10], hdr[11] = 0xFF, 0xFF, 0xFF, 0x7F
	buf.Write(hdr)
	r, _ := NewReader(&buf)
	if _, err := r.Next(); err == nil {
		t.Fatal("implausible length accepted")
	}
}
