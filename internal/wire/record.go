package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// RFC 1831 §10 record marking: each RPC message sent over a byte stream
// is carried as one or more fragments, each prefixed by a 4-byte header
// whose top bit marks the final fragment and whose low 31 bits give the
// fragment length. This is the framing layer between TCP and RPC — the
// live transport twin of the offline record scanner in internal/rpc.

// MaxRecordLen bounds a reassembled record (and any single fragment),
// protecting the receiver from hostile or corrupt length prefixes.
const MaxRecordLen = 1 << 24

// RecordConn frames RPC messages over a byte stream using record
// marking. Reads and writes are independently safe to use from one
// goroutine each (the usual reader-loop/writer split); concurrent
// writers must serialize externally.
type RecordConn struct {
	r   *bufio.Reader
	w   *bufio.Writer
	hdr [4]byte
}

// NewRecordConn wraps a stream (typically a net.Conn) in record framing.
func NewRecordConn(rw io.ReadWriter) *RecordConn {
	return &RecordConn{r: bufio.NewReader(rw), w: bufio.NewWriter(rw)}
}

// WriteRecord sends msg as a single final fragment and flushes.
func (c *RecordConn) WriteRecord(msg []byte) error {
	if len(msg) > MaxRecordLen {
		return fmt.Errorf("wire: record of %d bytes exceeds limit", len(msg))
	}
	binary.BigEndian.PutUint32(c.hdr[:], uint32(len(msg))|0x80000000)
	if _, err := c.w.Write(c.hdr[:]); err != nil {
		return err
	}
	if _, err := c.w.Write(msg); err != nil {
		return err
	}
	return c.w.Flush()
}

// ReadRecord reads one complete record, reassembling fragments. The
// returned slice is freshly allocated and owned by the caller.
//
// A stream that ends exactly on a record boundary returns io.EOF. A
// stream cut anywhere inside a record — mid-header, mid-body, or
// between the fragments of a multi-fragment record — returns
// io.ErrUnexpectedEOF, so connection loss never reads as a clean end
// of stream with a silently dropped tail.
func (c *RecordConn) ReadRecord() ([]byte, error) {
	var msg []byte
	started := false
	for {
		if _, err := io.ReadFull(c.r, c.hdr[:]); err != nil {
			if started && err == io.EOF {
				// Non-final fragments were consumed; the record is
				// truncated even though the header read saw no bytes.
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		started = true
		hdr := binary.BigEndian.Uint32(c.hdr[:])
		last := hdr&0x80000000 != 0
		n := int(hdr & 0x7FFFFFFF)
		if n > MaxRecordLen || len(msg)+n > MaxRecordLen {
			return nil, fmt.Errorf("wire: record fragment of %d bytes exceeds limit", n)
		}
		off := len(msg)
		msg = append(msg, make([]byte, n)...)
		if _, err := io.ReadFull(c.r, msg[off:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		if last {
			return msg, nil
		}
	}
}
