package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

var (
	clientIP = IP{10, 0, 0, 5}
	serverIP = IP{10, 0, 0, 1}
)

func TestUDPRoundTrip(t *testing.T) {
	payload := []byte("nfs call body")
	frame := BuildUDP(clientIP, serverIP, 1023, 2049, 42, payload)
	f, err := Decode(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if f.Proto != ProtoUDP || f.SrcPort != 1023 || f.DstPort != 2049 {
		t.Fatalf("header: %+v", f)
	}
	if f.SrcIP != clientIP || f.DstIP != serverIP {
		t.Fatalf("addrs: %v → %v", f.SrcIP, f.DstIP)
	}
	if !bytes.Equal(f.Payload, payload) {
		t.Fatalf("payload %q", f.Payload)
	}
	if f.IsFragment {
		t.Fatal("unfragmented frame flagged as fragment")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	payload := []byte("rpc over tcp")
	frame := BuildTCP(clientIP, serverIP, 800, 2049, 7, 1000, 2000, FlagPSH|FlagACK, payload)
	f, err := Decode(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if f.Proto != ProtoTCP || f.Seq != 1000 || f.Ack != 2000 {
		t.Fatalf("header: %+v", f)
	}
	if f.Flags != FlagPSH|FlagACK {
		t.Fatalf("flags %#x", f.Flags)
	}
	if !bytes.Equal(f.Payload, payload) {
		t.Fatalf("payload %q", f.Payload)
	}
}

func TestUDPRoundTripQuick(t *testing.T) {
	f := func(payload []byte, sport, dport uint16) bool {
		frame := BuildUDP(clientIP, serverIP, sport, dport, 1, payload)
		dec, err := Decode(frame)
		if err != nil {
			return false
		}
		return dec.SrcPort == sport && dec.DstPort == dport && bytes.Equal(dec.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	frame := BuildUDP(clientIP, serverIP, 1, 2, 3, []byte("hello"))
	for _, n := range []int{0, 5, EthernetHeaderLen - 1, EthernetHeaderLen + 3, EthernetHeaderLen + IPv4HeaderLen + 2} {
		if n > len(frame) {
			continue
		}
		if _, err := Decode(frame[:n]); err == nil {
			t.Errorf("truncation at %d accepted", n)
		}
	}
}

func TestDecodeNonIP(t *testing.T) {
	frame := BuildUDP(clientIP, serverIP, 1, 2, 3, nil)
	frame[12], frame[13] = 0x08, 0x06 // ARP
	if _, err := Decode(frame); err == nil {
		t.Error("ARP frame accepted")
	}
}

func TestIPString(t *testing.T) {
	if s := clientIP.String(); s != "10.0.0.5" {
		t.Errorf("String = %q", s)
	}
	if got := IPFromUint32(clientIP.Uint32()); got != clientIP {
		t.Errorf("uint32 round trip: %v", got)
	}
}

func TestFragmentationRoundTrip(t *testing.T) {
	// An 8k NFS read reply over standard MTU must fragment and
	// reassemble byte-exactly.
	payload := make([]byte, 8192)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	frames := FragmentUDP(serverIP, clientIP, 2049, 1023, 99, payload, StandardMTU)
	if len(frames) < 2 {
		t.Fatalf("8k payload produced %d frames at MTU 1500", len(frames))
	}
	df := NewDefragmenter()
	var result *Frame
	for i, raw := range frames {
		f, err := Decode(raw)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !f.IsFragment {
			t.Fatalf("frame %d not marked as fragment", i)
		}
		if got := df.Add(f); got != nil {
			if result != nil {
				t.Fatal("multiple reassemblies")
			}
			result = got
		}
	}
	if result == nil {
		t.Fatal("datagram never completed")
	}
	if !bytes.Equal(result.Payload, payload) {
		t.Fatalf("reassembled %d bytes, want %d", len(result.Payload), len(payload))
	}
	if result.SrcPort != 2049 || result.DstPort != 1023 {
		t.Fatalf("ports lost: %d→%d", result.SrcPort, result.DstPort)
	}
	if df.Pending() != 0 {
		t.Fatalf("%d reassemblies leaked", df.Pending())
	}
}

func TestFragmentationOutOfOrder(t *testing.T) {
	payload := make([]byte, 4000)
	for i := range payload {
		payload[i] = byte(i)
	}
	frames := FragmentUDP(serverIP, clientIP, 2049, 700, 5, payload, StandardMTU)
	df := NewDefragmenter()
	var result *Frame
	// Deliver in reverse order.
	for i := len(frames) - 1; i >= 0; i-- {
		f, err := Decode(frames[i])
		if err != nil {
			t.Fatal(err)
		}
		if got := df.Add(f); got != nil {
			result = got
		}
	}
	if result == nil || !bytes.Equal(result.Payload, payload) {
		t.Fatal("out-of-order reassembly failed")
	}
}

func TestFragmentLossLeavesPending(t *testing.T) {
	payload := make([]byte, 4000)
	frames := FragmentUDP(serverIP, clientIP, 2049, 700, 5, payload, StandardMTU)
	if len(frames) < 3 {
		t.Fatalf("want ≥3 fragments, got %d", len(frames))
	}
	df := NewDefragmenter()
	for i, raw := range frames {
		if i == 1 {
			continue // drop the middle fragment
		}
		f, _ := Decode(raw)
		if got := df.Add(f); got != nil {
			t.Fatal("completed despite loss")
		}
	}
	if df.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", df.Pending())
	}
	if n := df.Evict(); n != 1 {
		t.Fatalf("evicted %d", n)
	}
}

func TestJumboFrameSingleFragment(t *testing.T) {
	// With jumbo frames an 8k payload fits in one frame — the CAMPUS
	// configuration.
	payload := make([]byte, 8192)
	frames := FragmentUDP(serverIP, clientIP, 2049, 700, 5, payload, JumboMTU)
	if len(frames) != 1 {
		t.Fatalf("jumbo MTU produced %d frames, want 1", len(frames))
	}
	f, err := Decode(frames[0])
	if err != nil {
		t.Fatal(err)
	}
	if f.IsFragment {
		t.Fatal("jumbo frame marked as fragment")
	}
	if len(f.Payload) != 8192 {
		t.Fatalf("payload %d", len(f.Payload))
	}
}

func TestFlowKeyReverse(t *testing.T) {
	frame := BuildUDP(clientIP, serverIP, 1023, 2049, 1, nil)
	f, _ := Decode(frame)
	k := f.Flow()
	r := k.Reverse()
	if r.SrcIP != serverIP || r.DstPort != 1023 || r.Reverse() != k {
		t.Fatalf("reverse: %+v", r)
	}
}

func TestChecksumValid(t *testing.T) {
	frame := BuildUDP(clientIP, serverIP, 1, 2, 3, []byte("x"))
	ip := frame[EthernetHeaderLen : EthernetHeaderLen+IPv4HeaderLen]
	if checksum(ip) != 0 {
		t.Fatalf("IP header checksum does not verify: %#04x", checksum(ip))
	}
}
