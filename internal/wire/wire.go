// Package wire encodes and decodes the network framing beneath NFS:
// Ethernet II frames, IPv4 headers, and UDP/TCP transport headers,
// including the 9000-byte jumbo frames the CAMPUS network used. The
// sniffer parses these layers off captured packets; the traffic
// generator builds them.
//
// Only the fields the tracer needs are modeled: addressing, lengths,
// protocol numbers, TCP sequence numbers and flags. IP fragmentation is
// supported on decode (fragments are flagged, and a Defragmenter
// reassembles them) because UDP NFS traffic on standard-MTU networks
// fragments heavily.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Link and transport constants.
const (
	EtherTypeIPv4 = 0x0800
	ProtoTCP      = 6
	ProtoUDP      = 17

	EthernetHeaderLen = 14
	IPv4HeaderLen     = 20
	UDPHeaderLen      = 8
	TCPHeaderLen      = 20

	// StandardMTU is the classic Ethernet payload limit; JumboMTU is
	// the 9000-byte jumbo frame payload used on the CAMPUS gigabit net.
	StandardMTU = 1500
	JumboMTU    = 9000
)

// ErrTruncated reports a frame too short for its claimed headers.
var ErrTruncated = errors.New("wire: truncated packet")

// MAC is a 6-byte Ethernet address.
type MAC [6]byte

// IP is a 4-byte IPv4 address.
type IP [4]byte

// String renders the address in dotted-quad form.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// IPFromUint32 builds an address from a host-order integer.
func IPFromUint32(v uint32) IP {
	return IP{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// Uint32 returns the address as a host-order integer.
func (ip IP) Uint32() uint32 {
	return uint32(ip[0])<<24 | uint32(ip[1])<<16 | uint32(ip[2])<<8 | uint32(ip[3])
}

// TCP flag bits.
const (
	FlagFIN = 0x01
	FlagSYN = 0x02
	FlagRST = 0x04
	FlagPSH = 0x08
	FlagACK = 0x10
)

// Frame is a decoded packet: the layers beneath one NFS message (or one
// fragment of one).
type Frame struct {
	SrcMAC, DstMAC MAC
	SrcIP, DstIP   IP
	Proto          uint8 // ProtoTCP or ProtoUDP
	SrcPort        uint16
	DstPort        uint16

	// IP fragmentation state.
	IPID       uint16
	FragOffset uint16 // in bytes
	MoreFrags  bool
	IsFragment bool // FragOffset > 0 || MoreFrags

	// TCP state (valid when Proto == ProtoTCP).
	Seq   uint32
	Ack   uint32
	Flags uint8

	// Payload is the transport payload (for first fragments, includes
	// the UDP header's payload; for subsequent fragments, raw bytes).
	Payload []byte
}

// checksum computes the RFC 1071 internet checksum.
func checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xFFFF {
		sum = (sum >> 16) + (sum & 0xFFFF)
	}
	return ^uint16(sum)
}

// BuildUDP assembles a full Ethernet+IPv4+UDP frame around payload.
func BuildUDP(src, dst IP, srcPort, dstPort uint16, ipid uint16, payload []byte) []byte {
	totalIP := IPv4HeaderLen + UDPHeaderLen + len(payload)
	buf := make([]byte, EthernetHeaderLen+totalIP)
	buildEthernet(buf, src, dst)
	buildIPv4(buf[EthernetHeaderLen:], src, dst, ProtoUDP, ipid, 0, false, totalIP)
	udp := buf[EthernetHeaderLen+IPv4HeaderLen:]
	binary.BigEndian.PutUint16(udp[0:2], srcPort)
	binary.BigEndian.PutUint16(udp[2:4], dstPort)
	binary.BigEndian.PutUint16(udp[4:6], uint16(UDPHeaderLen+len(payload)))
	// Checksum 0 = unset, permitted for UDP/IPv4 and common on NFS nets.
	copy(udp[UDPHeaderLen:], payload)
	return buf
}

// BuildTCP assembles a full Ethernet+IPv4+TCP frame around payload.
func BuildTCP(src, dst IP, srcPort, dstPort uint16, ipid uint16, seq, ack uint32, flags uint8, payload []byte) []byte {
	totalIP := IPv4HeaderLen + TCPHeaderLen + len(payload)
	buf := make([]byte, EthernetHeaderLen+totalIP)
	buildEthernet(buf, src, dst)
	buildIPv4(buf[EthernetHeaderLen:], src, dst, ProtoTCP, ipid, 0, false, totalIP)
	tcp := buf[EthernetHeaderLen+IPv4HeaderLen:]
	binary.BigEndian.PutUint16(tcp[0:2], srcPort)
	binary.BigEndian.PutUint16(tcp[2:4], dstPort)
	binary.BigEndian.PutUint32(tcp[4:8], seq)
	binary.BigEndian.PutUint32(tcp[8:12], ack)
	tcp[12] = (TCPHeaderLen / 4) << 4 // data offset
	tcp[13] = flags
	binary.BigEndian.PutUint16(tcp[14:16], 65535) // window
	copy(tcp[TCPHeaderLen:], payload)
	return buf
}

// FragmentUDP builds one or more frames carrying payload as a UDP
// datagram fragmented to fit mtu bytes of IP packet per frame. With a
// large enough mtu it returns a single unfragmented frame.
func FragmentUDP(src, dst IP, srcPort, dstPort uint16, ipid uint16, payload []byte, mtu int) [][]byte {
	if mtu <= 0 {
		mtu = StandardMTU
	}
	datagram := make([]byte, UDPHeaderLen+len(payload))
	binary.BigEndian.PutUint16(datagram[0:2], srcPort)
	binary.BigEndian.PutUint16(datagram[2:4], dstPort)
	binary.BigEndian.PutUint16(datagram[4:6], uint16(len(datagram)))
	copy(datagram[UDPHeaderLen:], payload)

	maxData := mtu - IPv4HeaderLen
	maxData -= maxData % 8 // fragment offsets are in 8-byte units
	if len(datagram) <= maxData {
		return [][]byte{BuildUDP(src, dst, srcPort, dstPort, ipid, payload)}
	}
	var frames [][]byte
	for off := 0; off < len(datagram); off += maxData {
		end := off + maxData
		more := true
		if end >= len(datagram) {
			end = len(datagram)
			more = false
		}
		chunk := datagram[off:end]
		totalIP := IPv4HeaderLen + len(chunk)
		buf := make([]byte, EthernetHeaderLen+totalIP)
		buildEthernet(buf, src, dst)
		buildIPv4(buf[EthernetHeaderLen:], src, dst, ProtoUDP, ipid, uint16(off), more, totalIP)
		copy(buf[EthernetHeaderLen+IPv4HeaderLen:], chunk)
		frames = append(frames, buf)
	}
	return frames
}

func buildEthernet(buf []byte, src, dst IP) {
	// Derive stable MACs from the IPs; the tracer never uses them, but
	// real frames have them.
	copy(buf[0:6], []byte{0x02, 0, dst[0], dst[1], dst[2], dst[3]})
	copy(buf[6:12], []byte{0x02, 0, src[0], src[1], src[2], src[3]})
	binary.BigEndian.PutUint16(buf[12:14], EtherTypeIPv4)
}

func buildIPv4(buf []byte, src, dst IP, proto uint8, ipid uint16, fragOff uint16, more bool, totalLen int) {
	buf[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(buf[2:4], uint16(totalLen))
	binary.BigEndian.PutUint16(buf[4:6], ipid)
	frag := fragOff / 8
	if more {
		frag |= 0x2000 // MF
	}
	binary.BigEndian.PutUint16(buf[6:8], frag)
	buf[8] = 64 // TTL
	buf[9] = proto
	copy(buf[12:16], src[:])
	copy(buf[16:20], dst[:])
	binary.BigEndian.PutUint16(buf[10:12], 0)
	binary.BigEndian.PutUint16(buf[10:12], checksum(buf[:IPv4HeaderLen]))
}

// Decode parses an Ethernet frame down to its transport payload.
func Decode(b []byte) (*Frame, error) {
	if len(b) < EthernetHeaderLen {
		return nil, ErrTruncated
	}
	var f Frame
	copy(f.DstMAC[:], b[0:6])
	copy(f.SrcMAC[:], b[6:12])
	if binary.BigEndian.Uint16(b[12:14]) != EtherTypeIPv4 {
		return nil, fmt.Errorf("wire: not IPv4 (ethertype %#04x)", binary.BigEndian.Uint16(b[12:14]))
	}
	ip := b[EthernetHeaderLen:]
	if len(ip) < IPv4HeaderLen {
		return nil, ErrTruncated
	}
	if ip[0]>>4 != 4 {
		return nil, fmt.Errorf("wire: IP version %d", ip[0]>>4)
	}
	ihl := int(ip[0]&0x0F) * 4
	if ihl < IPv4HeaderLen || len(ip) < ihl {
		return nil, ErrTruncated
	}
	totalLen := int(binary.BigEndian.Uint16(ip[2:4]))
	if totalLen > len(ip) {
		return nil, ErrTruncated
	}
	f.IPID = binary.BigEndian.Uint16(ip[4:6])
	frag := binary.BigEndian.Uint16(ip[6:8])
	f.MoreFrags = frag&0x2000 != 0
	f.FragOffset = (frag & 0x1FFF) * 8
	f.IsFragment = f.MoreFrags || f.FragOffset > 0
	f.Proto = ip[9]
	copy(f.SrcIP[:], ip[12:16])
	copy(f.DstIP[:], ip[16:20])
	payload := ip[ihl:totalLen]

	if f.IsFragment && f.FragOffset > 0 {
		// Non-first fragment: no transport header to parse.
		f.Payload = payload
		return &f, nil
	}

	switch f.Proto {
	case ProtoUDP:
		if len(payload) < UDPHeaderLen {
			return nil, ErrTruncated
		}
		f.SrcPort = binary.BigEndian.Uint16(payload[0:2])
		f.DstPort = binary.BigEndian.Uint16(payload[2:4])
		f.Payload = payload[UDPHeaderLen:]
	case ProtoTCP:
		if len(payload) < TCPHeaderLen {
			return nil, ErrTruncated
		}
		f.SrcPort = binary.BigEndian.Uint16(payload[0:2])
		f.DstPort = binary.BigEndian.Uint16(payload[2:4])
		f.Seq = binary.BigEndian.Uint32(payload[4:8])
		f.Ack = binary.BigEndian.Uint32(payload[8:12])
		dataOff := int(payload[12]>>4) * 4
		if dataOff < TCPHeaderLen || len(payload) < dataOff {
			return nil, ErrTruncated
		}
		f.Flags = payload[13]
		f.Payload = payload[dataOff:]
	default:
		return nil, fmt.Errorf("wire: unsupported IP protocol %d", f.Proto)
	}
	return &f, nil
}

// FlowKey identifies one direction of one transport flow.
type FlowKey struct {
	SrcIP, DstIP     IP
	SrcPort, DstPort uint16
	Proto            uint8
}

// Flow returns the frame's flow key.
func (f *Frame) Flow() FlowKey {
	return FlowKey{SrcIP: f.SrcIP, DstIP: f.DstIP, SrcPort: f.SrcPort, DstPort: f.DstPort, Proto: f.Proto}
}

// Reverse returns the opposite direction's key.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{SrcIP: k.DstIP, DstIP: k.SrcIP, SrcPort: k.DstPort, DstPort: k.SrcPort, Proto: k.Proto}
}

// fragKey identifies an in-progress IP reassembly.
type fragKey struct {
	src, dst IP
	id       uint16
	proto    uint8
}

type fragState struct {
	chunks   map[uint16][]byte // offset → bytes
	haveLast bool
	lastEnd  int
}

// Defragmenter reassembles fragmented IPv4 datagrams. Feed it every
// decoded frame; it returns a synthesized unfragmented Frame when a
// datagram completes, or nil.
type Defragmenter struct {
	pending map[fragKey]*fragState
}

// NewDefragmenter returns an empty reassembler.
func NewDefragmenter() *Defragmenter {
	return &Defragmenter{pending: make(map[fragKey]*fragState)}
}

// Pending reports the number of incomplete datagrams held.
func (df *Defragmenter) Pending() int { return len(df.pending) }

// Add processes one frame. Unfragmented frames are returned unchanged.
// Fragments are buffered; when all pieces of a datagram have arrived the
// reassembled frame is returned (with transport header parsed).
func (df *Defragmenter) Add(f *Frame) *Frame {
	if !f.IsFragment {
		return f
	}
	key := fragKey{src: f.SrcIP, dst: f.DstIP, id: f.IPID, proto: f.Proto}
	st := df.pending[key]
	if st == nil {
		st = &fragState{chunks: make(map[uint16][]byte)}
		df.pending[key] = st
	}
	var raw []byte
	if f.FragOffset == 0 {
		// First fragment: restore the UDP header so reassembly yields
		// the original datagram. (TCP is never fragmented by our nets.)
		raw = make([]byte, UDPHeaderLen+len(f.Payload))
		binary.BigEndian.PutUint16(raw[0:2], f.SrcPort)
		binary.BigEndian.PutUint16(raw[2:4], f.DstPort)
		copy(raw[UDPHeaderLen:], f.Payload)
	} else {
		raw = f.Payload
	}
	st.chunks[f.FragOffset] = raw
	if !f.MoreFrags {
		st.haveLast = true
		st.lastEnd = int(f.FragOffset) + len(raw)
	}
	if !st.haveLast {
		return nil
	}
	// Check contiguity.
	datagram := make([]byte, st.lastEnd)
	covered := 0
	for off, chunk := range st.chunks {
		if int(off)+len(chunk) > st.lastEnd {
			continue
		}
		copy(datagram[off:], chunk)
		covered += len(chunk)
	}
	if covered < st.lastEnd {
		return nil // holes remain
	}
	delete(df.pending, key)
	if len(datagram) < UDPHeaderLen {
		return nil
	}
	out := *f
	out.IsFragment = false
	out.MoreFrags = false
	out.FragOffset = 0
	out.SrcPort = binary.BigEndian.Uint16(datagram[0:2])
	out.DstPort = binary.BigEndian.Uint16(datagram[2:4])
	out.Payload = datagram[UDPHeaderLen:]
	return &out
}

// Evict drops all pending reassemblies, modeling timeout of lost
// fragments, and reports how many datagrams were abandoned.
func (df *Defragmenter) Evict() int {
	n := len(df.pending)
	df.pending = make(map[fragKey]*fragState)
	return n
}
