package wire

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/rpc"
)

// rwBuffer joins separate read and write buffers into an io.ReadWriter,
// standing in for the two directions of a socket.
type rwBuffer struct {
	r *bytes.Buffer
	w *bytes.Buffer
}

func (b *rwBuffer) Read(p []byte) (int, error)  { return b.r.Read(p) }
func (b *rwBuffer) Write(p []byte) (int, error) { return b.w.Write(p) }

func TestRecordConnRoundTrip(t *testing.T) {
	var wireBytes bytes.Buffer
	send := NewRecordConn(&rwBuffer{r: &bytes.Buffer{}, w: &wireBytes})
	msgs := [][]byte{
		{},
		[]byte("x"),
		bytes.Repeat([]byte("nfs"), 5000),
	}
	for _, m := range msgs {
		if err := send.WriteRecord(m); err != nil {
			t.Fatal(err)
		}
	}
	recv := NewRecordConn(&rwBuffer{r: &wireBytes, w: &bytes.Buffer{}})
	for i, want := range msgs {
		got, err := recv.ReadRecord()
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("msg %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, err := recv.ReadRecord(); err != io.EOF {
		t.Fatalf("expected EOF after last record, got %v", err)
	}
}

// TestRecordConnFragments checks interoperability with the offline
// record-marking encoder in internal/rpc: multi-fragment records
// reassemble to the original message.
func TestRecordConnFragments(t *testing.T) {
	msg := bytes.Repeat([]byte("fragmented rpc message "), 40)
	stream := rpc.MarkRecordFragmented(msg, 7)
	stream = append(stream, rpc.MarkRecord([]byte("tail"))...)
	rc := NewRecordConn(&rwBuffer{r: bytes.NewBuffer(stream), w: &bytes.Buffer{}})
	got, err := rc.ReadRecord()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("reassembled %d bytes, want %d", len(got), len(msg))
	}
	tail, err := rc.ReadRecord()
	if err != nil || string(tail) != "tail" {
		t.Fatalf("tail record: %q err %v", tail, err)
	}
}

// TestRecordConnSymmetry: what WriteRecord emits, rpc.RecordScanner
// parses — the live and offline framers agree byte for byte.
func TestRecordConnSymmetry(t *testing.T) {
	var wireBytes bytes.Buffer
	send := NewRecordConn(&rwBuffer{r: &bytes.Buffer{}, w: &wireBytes})
	msg := []byte("one rpc message")
	if err := send.WriteRecord(msg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wireBytes.Bytes(), rpc.MarkRecord(msg)) {
		t.Fatal("WriteRecord framing differs from rpc.MarkRecord")
	}
	var sc rpc.RecordScanner
	sc.Append(wireBytes.Bytes())
	got, err := sc.Next()
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("scanner got %q err %v", got, err)
	}
}

// TestRecordConnTruncation pins the EOF taxonomy: a stream ending on a
// record boundary is a clean io.EOF, but a cut anywhere inside a record
// — mid-header, mid-body, or between fragments — is io.ErrUnexpectedEOF.
// A coordinator relies on this to tell an orderly shutdown from a
// worker that died mid-stream.
func TestRecordConnTruncation(t *testing.T) {
	full := rpc.MarkRecordFragmented(bytes.Repeat([]byte("payload "), 64), 33)
	cases := []struct {
		name string
		cut  int
		want error
	}{
		{"empty stream", 0, io.EOF},
		{"partial first header", 2, io.ErrUnexpectedEOF},
		{"partial fragment body", 4 + 10, io.ErrUnexpectedEOF},
		{"clean cut between fragments", 4 + 33, io.ErrUnexpectedEOF},
		{"partial second header", 4 + 33 + 2, io.ErrUnexpectedEOF},
		{"complete record", len(full), nil},
	}
	for _, tc := range cases {
		rc := NewRecordConn(&rwBuffer{r: bytes.NewBuffer(full[:tc.cut]), w: &bytes.Buffer{}})
		_, err := rc.ReadRecord()
		if err != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
		if tc.want == nil {
			// After a complete record the boundary EOF must stay clean.
			if _, err := rc.ReadRecord(); err != io.EOF {
				t.Errorf("%s: post-record read: got %v, want io.EOF", tc.name, err)
			}
		}
	}
}

func TestRecordConnLimits(t *testing.T) {
	// A hostile length prefix must error, not allocate 2GB.
	evil := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	rc := NewRecordConn(&rwBuffer{r: bytes.NewBuffer(evil), w: &bytes.Buffer{}})
	if _, err := rc.ReadRecord(); err == nil {
		t.Fatal("oversized fragment accepted")
	}
	// Truncated fragment body → ErrUnexpectedEOF, not silent EOF.
	trunc := rpc.MarkRecord([]byte("full message"))[:8]
	rc = NewRecordConn(&rwBuffer{r: bytes.NewBuffer(trunc), w: &bytes.Buffer{}})
	if _, err := rc.ReadRecord(); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated record: got %v, want ErrUnexpectedEOF", err)
	}
	// Oversized write rejected.
	send := NewRecordConn(&rwBuffer{r: &bytes.Buffer{}, w: &bytes.Buffer{}})
	if err := send.WriteRecord(make([]byte, MaxRecordLen+1)); err == nil {
		t.Fatal("oversized write accepted")
	}
}
