package vfs

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/nfs"
)

// checkInvariants asserts the structural health of a quiescent
// filesystem: every inode is reachable from the root, link counts match
// directory entries, the tree is acyclic, and the per-UID usage ledger
// equals the sum of live Used(). Callers must have joined all writers.
func checkInvariants(t *testing.T, fs *FS) {
	t.Helper()
	entries := make(map[uint64]int) // inode → directory entries referencing it
	subdirs := make(map[uint64]int) // dir → child directory count
	visited := make(map[uint64]bool)
	var walk func(id uint64)
	walk = func(id uint64) {
		if visited[id] {
			t.Fatalf("directory cycle through inode %d", id)
		}
		visited[id] = true
		d := fs.inodes[id]
		for name, cid := range d.children {
			c := fs.inodes[cid]
			if c == nil {
				t.Fatalf("entry %q in dir %d points at missing inode %d", name, id, cid)
			}
			entries[cid]++
			if c.Type == nfs.TypeDir {
				subdirs[id]++
				if entries[cid] > 1 {
					t.Fatalf("directory inode %d has %d links", cid, entries[cid])
				}
				walk(cid)
			}
		}
	}
	walk(fs.root)

	usageWant := make(map[uint32]uint64)
	for id, ino := range fs.inodes {
		if ino.Type != nfs.TypeDir {
			usageWant[ino.UID] += ino.Used()
		}
		if id == fs.root {
			if want := uint32(2 + subdirs[id]); ino.Nlink != want {
				t.Errorf("root nlink = %d, want %d", ino.Nlink, want)
			}
			continue
		}
		if entries[id] == 0 {
			t.Errorf("orphan inode %d (type %d, nlink %d)", id, ino.Type, ino.Nlink)
			continue
		}
		if ino.Type == nfs.TypeDir {
			if want := uint32(2 + subdirs[id]); ino.Nlink != want {
				t.Errorf("dir %d nlink = %d, want %d", id, ino.Nlink, want)
			}
		} else if ino.Nlink != uint32(entries[id]) {
			t.Errorf("inode %d nlink = %d, want %d entries", id, ino.Nlink, entries[id])
		}
	}
	for uid, got := range fs.usage {
		if got != usageWant[uid] {
			t.Errorf("usage[%d] = %d, want %d (sum of live Used)", uid, got, usageWant[uid])
		}
	}
	for uid, want := range usageWant {
		if fs.usage[uid] != want {
			t.Errorf("usage[%d] = %d, want %d", uid, fs.usage[uid], want)
		}
	}
}

// TestConcurrentTorture hammers a shared tree with mixed namespace,
// data, and attribute operations from many goroutines, then asserts the
// structural invariants. Run it under -race: the interleavings are the
// test.
func TestConcurrentTorture(t *testing.T) {
	fs := New()
	var tick atomic.Int64
	fs.Clock = func() float64 { return float64(tick.Add(1)) * 1e-6 }
	fs.QuotaPerUID = 1 << 20 // small, so ErrQuota paths get exercised

	const ndirs = 4
	dirs := make([]uint64, ndirs)
	for i := range dirs {
		d, err := fs.Mkdir(fs.Root(), fmt.Sprintf("top%d", i), 0, 0, 0755)
		if err != nil {
			t.Fatal(err)
		}
		dirs[i] = d.ID
	}

	workers := 8
	opsPer := 2500
	if testing.Short() {
		opsPer = 500
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
			uid := uint32(100 + w%3) // shared UIDs stress the usage ledger
			name := func() string { return fmt.Sprintf("f%02d", rng.Intn(24)) }
			dir := func() uint64 { return dirs[rng.Intn(ndirs)] }
			for i := 0; i < opsPer; i++ {
				switch rng.Intn(12) {
				case 0:
					fs.Create(dir(), name(), uid, uid, 0644)
				case 1:
					if ino, err := fs.Lookup(dir(), name()); err == nil && ino.Type == nfs.TypeReg {
						fs.Write(ino.ID, uint64(rng.Intn(8))*1024, uint64(rng.Intn(16*1024)))
					}
				case 2:
					if ino, err := fs.Lookup(dir(), name()); err == nil && ino.Type == nfs.TypeReg {
						fs.Read(ino.ID, uint64(rng.Intn(32*1024)), 8192)
					}
				case 3:
					fs.Remove(dir(), name())
				case 4:
					fs.Rename(dir(), name(), dir(), name())
				case 5:
					// Move directories too, including attempts to move a
					// top dir into another's subtree (may hit ErrInval).
					fs.Rename(fs.Root(), fmt.Sprintf("top%d", rng.Intn(ndirs)),
						dir(), fmt.Sprintf("sub%d", rng.Intn(6)))
				case 6:
					fs.Readdir(dir(), uint64(rng.Intn(4)), 8)
				case 7:
					d := dir()
					sub := fmt.Sprintf("sub%d", rng.Intn(6))
					if rng.Intn(2) == 0 {
						fs.Mkdir(d, sub, uid, uid, 0755)
					} else {
						fs.Rmdir(d, sub)
					}
				case 8:
					fs.Symlink(dir(), name(), "/some/target", uid, uid)
				case 9:
					if ino, err := fs.Lookup(dir(), name()); err == nil && ino.Type != nfs.TypeDir {
						fs.Link(ino.ID, dir(), fmt.Sprintf("ln%02d", rng.Intn(24)))
					}
					fs.Remove(dir(), fmt.Sprintf("ln%02d", rng.Intn(24)))
				case 10:
					if ino, err := fs.Lookup(dir(), name()); err == nil {
						fs.Attr(ino)
						fs.Path(ino.ID)
						if ino.Type == nfs.TypeReg {
							fs.Truncate(ino.ID, uint64(rng.Intn(64*1024)))
						}
					}
				case 11:
					var size *uint64
					if rng.Intn(2) == 0 {
						s := uint64(rng.Intn(32 * 1024))
						size = &s
					}
					mode := uint32(0600)
					if ino, err := fs.Lookup(dir(), name()); err == nil && ino.Type == nfs.TypeReg {
						fs.Setattr(ino.ID, size, &mode, nil, nil)
					}
					fs.TotalBytes()
					fs.NumInodes()
				}
			}
		}(w)
	}
	wg.Wait()
	checkInvariants(t, fs)
}

// TestConcurrentRenameLinkDeadlock drives the two-directory operations
// (Rename, Link) in both directions across the same pair of directories
// so any lock-ordering mistake deadlocks immediately.
func TestConcurrentRenameLinkDeadlock(t *testing.T) {
	fs := New()
	a, _ := fs.Mkdir(fs.Root(), "a", 0, 0, 0755)
	b, _ := fs.Mkdir(fs.Root(), "b", 0, 0, 0755)
	for i := 0; i < 8; i++ {
		if _, err := fs.Create(a.ID, fmt.Sprintf("f%d", i), 1, 1, 0644); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			from, to := a.ID, b.ID
			if w%2 == 1 {
				from, to = b.ID, a.ID
			}
			for i := 0; i < 2000; i++ {
				name := fmt.Sprintf("f%d", rng.Intn(8))
				switch rng.Intn(3) {
				case 0:
					fs.Rename(from, name, to, name)
				case 1:
					fs.Rename(to, name, from, name)
				case 2:
					if ino, err := fs.Lookup(from, name); err == nil && ino.Type == nfs.TypeReg {
						fs.Link(ino.ID, to, fmt.Sprintf("ln%d", rng.Intn(8)))
					}
					fs.Remove(to, fmt.Sprintf("ln%d", rng.Intn(8)))
				}
			}
		}(w)
	}
	wg.Wait()
	checkInvariants(t, fs)
}
