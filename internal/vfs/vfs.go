// Package vfs provides the in-memory UNIX-like filesystem that backs the
// NFS server simulator: inodes with attributes, directories, file
// handles, quotas, and block accounting.
//
// File contents are not stored — only sizes — because the tracer and
// every analysis in the paper operate on operation streams and byte
// counts, never on data. Storing content for a simulated week of CAMPUS
// traffic (135 GB/day read) would be pointless and impossible in memory.
// Reads and writes therefore manipulate size and timestamps exactly as a
// real server would, and the server layer synthesizes payload filler
// when a byte-faithful packet is required.
//
// # Concurrency
//
// FS is safe for concurrent use by multiple goroutines, so the socket
// serving layer can dispatch procedures in parallel. Locking is
// two-level:
//
//   - fs.mu (RWMutex) guards only the inode table (the id → *Inode map,
//     nextID, and the NumInodes/TotalBytes iteration). It is held for
//     map lookups and the brief insert/delete during create/unlink.
//   - fs.shards, a fixed array of RWMutexes keyed by inode ID
//     (ID % lockShards), guards every mutable inode field: attributes,
//     times, the children map of a directory, parent/name back-pointers,
//     and Nlink. Attribute reads (Getattr, Lookup, Attr) take the shard
//     read lock; mutations (Write, Create, Remove, ...) take the shard
//     write lock, so operations on different inodes run in parallel and
//     serialize only when they touch the same shard.
//   - fs.usageMu guards the per-UID usage map so a quota check and its
//     charge are one atomic step.
//   - fs.renameMu serializes cross-directory renames, making the
//     rename-cycle ancestor walk sound (the same job as Linux's
//     s_vfs_rename_mutex). Parent back-pointers change only under it.
//
// Lock ordering (outermost first): renameMu → shard locks in ascending
// shard index → fs.mu → usageMu. Operations that touch several inodes
// whose identities are only discovered by reading a directory
// (Remove, Rmdir, Rename) first peek under the directory's read lock,
// then acquire the full ordered lock set and re-validate the entry,
// retrying if another operation won the race. Inode IDs are never
// reused, so a re-validated entry cannot be an ABA impostor.
//
// The Clock field must be safe for concurrent use once the filesystem
// is shared between goroutines.
package vfs

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"

	"repro/internal/nfs"
)

// Filesystem errors, mapped to NFS status codes by the server layer.
var (
	ErrNotFound    = errors.New("vfs: no such file or directory")
	ErrExist       = errors.New("vfs: file exists")
	ErrNotDir      = errors.New("vfs: not a directory")
	ErrIsDir       = errors.New("vfs: is a directory")
	ErrNotEmpty    = errors.New("vfs: directory not empty")
	ErrStale       = errors.New("vfs: stale file handle")
	ErrQuota       = errors.New("vfs: quota exceeded")
	ErrNameTooLong = errors.New("vfs: name too long")
	ErrInval       = errors.New("vfs: invalid argument")
	ErrTooBig      = errors.New("vfs: file too large")
)

// BlockSize is the filesystem block size used for Used accounting; the
// paper's analyses round to 8 KB blocks.
const BlockSize = 8192

// MaxNameLen bounds a single path component.
const MaxNameLen = 255

// MaxFileSize bounds file sizes and write/read extents so that block
// rounding and offset arithmetic can never overflow uint64. A hostile
// client wrapping offset+count past zero gets ErrInval/ErrTooBig
// instead of silently corrupting size or usage accounting.
const MaxFileSize = 1 << 62

// lockShards is the number of per-inode lock shards. Inode i is guarded
// by shard i % lockShards; collisions cost parallelism, never safety.
const lockShards = 64

// Inode is one filesystem object.
type Inode struct {
	ID    uint64
	Type  uint32 // nfs.TypeReg, TypeDir, TypeLnk
	Mode  uint32
	Nlink uint32
	UID   uint32
	GID   uint32
	Size  uint64
	Atime float64 // seconds since trace epoch
	Mtime float64
	Ctime float64

	// children maps name → inode ID for directories.
	children map[string]uint64
	// parent is the containing directory (directories only, for path
	// reconstruction; hard links to files may have several parents and
	// we record the first).
	parent uint64
	// name is the name under parent (first link).
	name string
	// Target is the symlink target, if Type == TypeLnk.
	Target string
}

// Used reports the block-rounded space consumption.
func (ino *Inode) Used() uint64 {
	return (ino.Size + BlockSize - 1) / BlockSize * BlockSize
}

// FS is an in-memory filesystem with a single root. See the package
// comment for the locking model.
type FS struct {
	mu     sync.RWMutex // inode table: inodes, nextID
	inodes map[uint64]*Inode
	nextID uint64
	root   uint64

	// shards guards per-inode state, keyed by ID % lockShards.
	shards [lockShards]sync.RWMutex

	// renameMu serializes cross-directory renames (ancestor walks).
	renameMu sync.Mutex

	// QuotaPerUID is the per-user byte quota (0 = unlimited); the
	// CAMPUS system gave each user 50 MB. Set it before sharing the
	// filesystem between goroutines.
	QuotaPerUID uint64
	usageMu     sync.Mutex
	usage       map[uint32]uint64

	// Clock supplies "now" for timestamps, driven by the simulator.
	Clock func() float64
}

// New creates a filesystem with an empty root directory owned by root.
func New() *FS {
	fs := &FS{
		inodes: make(map[uint64]*Inode),
		nextID: 2, // inode 2 is the root, as in FFS
		usage:  make(map[uint32]uint64),
		Clock:  func() float64 { return 0 },
	}
	root := &Inode{
		ID: 2, Type: nfs.TypeDir, Mode: 0755, Nlink: 2,
		children: make(map[string]uint64),
	}
	fs.inodes[2] = root
	fs.root = 2
	fs.nextID = 3
	return fs
}

// shardOf returns the lock shard guarding inode id.
func (fs *FS) shardOf(id uint64) *sync.RWMutex {
	return &fs.shards[id%lockShards]
}

// lockIDs write-locks the shards of the given inodes in ascending shard
// index (deduplicated) and returns the matching unlock function. This is
// the ordering rule that keeps two-directory operations (Rename, Link,
// Remove with its child) deadlock-free.
func (fs *FS) lockIDs(ids ...uint64) func() {
	var idx [4]int
	n := 0
	for _, id := range ids {
		s := int(id % lockShards)
		dup := false
		for i := 0; i < n; i++ {
			if idx[i] == s {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		// Insertion sort: the set has at most four members.
		i := n
		for i > 0 && idx[i-1] > s {
			idx[i] = idx[i-1]
			i--
		}
		idx[i] = s
		n++
	}
	for i := 0; i < n; i++ {
		fs.shards[idx[i]].Lock()
	}
	return func() {
		for i := n - 1; i >= 0; i-- {
			fs.shards[idx[i]].Unlock()
		}
	}
}

// Root returns the root directory's inode ID.
func (fs *FS) Root() uint64 { return fs.root }

// RootFH returns the root file handle.
func (fs *FS) RootFH() nfs.FH { return nfs.MakeFH(fs.root) }

// NumInodes reports the number of live inodes.
func (fs *FS) NumInodes() int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return len(fs.inodes)
}

// get resolves an inode by ID under the table lock.
func (fs *FS) get(id uint64) (*Inode, error) {
	fs.mu.RLock()
	ino := fs.inodes[id]
	fs.mu.RUnlock()
	if ino == nil {
		return nil, ErrStale
	}
	return ino, nil
}

// tableInsert assigns the next inode ID and publishes ino in the table.
func (fs *FS) tableInsert(ino *Inode) {
	fs.mu.Lock()
	ino.ID = fs.nextID
	fs.nextID++
	fs.inodes[ino.ID] = ino
	fs.mu.Unlock()
}

// tableDelete removes id from the table. Callers hold the inode's shard
// lock, so an ID observed in a directory entry under its shard lock is
// always still resolvable.
func (fs *FS) tableDelete(id uint64) {
	fs.mu.Lock()
	delete(fs.inodes, id)
	fs.mu.Unlock()
}

// Get resolves an inode by ID.
func (fs *FS) Get(id uint64) (*Inode, error) {
	return fs.get(id)
}

// GetFH resolves an inode from a file handle.
func (fs *FS) GetFH(fh nfs.FH) (*Inode, error) {
	id, ok := fh.FileID()
	if !ok {
		return nil, ErrStale
	}
	return fs.get(id)
}

// Lookup resolves name within directory dir.
func (fs *FS) Lookup(dir uint64, name string) (*Inode, error) {
	sh := fs.shardOf(dir)
	sh.RLock()
	d, err := fs.get(dir)
	if err != nil {
		sh.RUnlock()
		return nil, err
	}
	if d.Type != nfs.TypeDir {
		sh.RUnlock()
		return nil, ErrNotDir
	}
	switch name {
	case ".", "":
		sh.RUnlock()
		return d, nil
	case "..":
		parent := d.parent
		sh.RUnlock()
		if parent == 0 {
			return d, nil
		}
		return fs.get(parent)
	}
	id, ok := d.children[name]
	sh.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	return fs.get(id)
}

// peekChild reads dir's entry for name under the directory's shard read
// lock, for the two-phase lock protocols of Remove/Rmdir/Rename.
func (fs *FS) peekChild(dir uint64, name string) (id uint64, ok bool, err error) {
	sh := fs.shardOf(dir)
	sh.RLock()
	defer sh.RUnlock()
	d, err := fs.get(dir)
	if err != nil {
		return 0, false, err
	}
	if d.Type != nfs.TypeDir {
		return 0, false, ErrNotDir
	}
	id, ok = d.children[name]
	return id, ok, nil
}

func (fs *FS) checkName(name string) error {
	if len(name) > MaxNameLen {
		return ErrNameTooLong
	}
	if name == "" || name == "." || name == ".." || strings.ContainsRune(name, '/') {
		return ErrExist
	}
	return nil
}

// createNode allocates and links a new child of dir under the
// directory's shard write lock. charge is the byte usage to debit
// against the owner's quota before the node becomes visible (symlinks
// carry their target length; regular files and directories are free at
// creation).
func (fs *FS) createNode(dir uint64, name string, ino *Inode, charge int64) (*Inode, error) {
	if err := fs.checkName(name); err != nil {
		return nil, err
	}
	sh := fs.shardOf(dir)
	sh.Lock()
	defer sh.Unlock()
	d, err := fs.get(dir)
	if err != nil {
		return nil, err
	}
	if d.Type != nfs.TypeDir {
		return nil, ErrNotDir
	}
	if _, exists := d.children[name]; exists {
		return nil, ErrExist
	}
	if charge > 0 {
		if err := fs.chargeQuota(ino.UID, charge); err != nil {
			return nil, err
		}
	}
	now := fs.Clock()
	ino.Atime, ino.Mtime, ino.Ctime = now, now, now
	ino.parent, ino.name = dir, name
	fs.tableInsert(ino)
	d.children[name] = ino.ID
	if ino.Type == nfs.TypeDir {
		d.Nlink++
	}
	d.Mtime, d.Ctime = now, now
	return ino, nil
}

// Create makes a regular file under dir. It fails if the name exists.
func (fs *FS) Create(dir uint64, name string, uid, gid, mode uint32) (*Inode, error) {
	return fs.createNode(dir, name, &Inode{
		Type: nfs.TypeReg, Mode: mode, Nlink: 1, UID: uid, GID: gid,
	}, 0)
}

// Mkdir makes a directory under dir.
func (fs *FS) Mkdir(dir uint64, name string, uid, gid, mode uint32) (*Inode, error) {
	return fs.createNode(dir, name, &Inode{
		Type: nfs.TypeDir, Mode: mode, Nlink: 2, UID: uid, GID: gid,
		children: make(map[string]uint64),
	}, 0)
}

// Symlink makes a symbolic link under dir. The target length is charged
// against the owner's quota, matching how Remove and Rename later debit
// Used() when the link dies.
func (fs *FS) Symlink(dir uint64, name, target string, uid, gid uint32) (*Inode, error) {
	ino := &Inode{
		Type: nfs.TypeLnk, Mode: 0777, Nlink: 1, UID: uid, GID: gid,
		Size: uint64(len(target)), Target: target,
	}
	return fs.createNode(dir, name, ino, int64(ino.Used()))
}

// Remove unlinks a non-directory name from dir. The inode is freed when
// its link count reaches zero.
func (fs *FS) Remove(dir uint64, name string) error {
	for {
		id, ok, err := fs.peekChild(dir, name)
		if err != nil {
			return err
		}
		if !ok {
			return ErrNotFound
		}
		unlock := fs.lockIDs(dir, id)
		d, err := fs.get(dir)
		if err != nil {
			unlock()
			return err
		}
		if d.children[name] != id {
			unlock()
			continue // lost a race with another namespace op
		}
		ino, err := fs.get(id)
		if err != nil {
			unlock()
			return err
		}
		if ino.Type == nfs.TypeDir {
			unlock()
			return ErrIsDir
		}
		now := fs.Clock()
		delete(d.children, name)
		d.Mtime, d.Ctime = now, now
		ino.Nlink--
		ino.Ctime = now
		if ino.Nlink == 0 {
			fs.chargeUser(ino.UID, -int64(ino.Used()))
			fs.tableDelete(id)
		}
		unlock()
		return nil
	}
}

// Rmdir removes an empty directory.
func (fs *FS) Rmdir(dir uint64, name string) error {
	for {
		id, ok, err := fs.peekChild(dir, name)
		if err != nil {
			return err
		}
		if !ok {
			return ErrNotFound
		}
		unlock := fs.lockIDs(dir, id)
		d, err := fs.get(dir)
		if err != nil {
			unlock()
			return err
		}
		if d.children[name] != id {
			unlock()
			continue
		}
		ino, err := fs.get(id)
		if err != nil {
			unlock()
			return err
		}
		if ino.Type != nfs.TypeDir {
			unlock()
			return ErrNotDir
		}
		if len(ino.children) != 0 {
			unlock()
			return ErrNotEmpty
		}
		now := fs.Clock()
		delete(d.children, name)
		d.Nlink--
		d.Mtime, d.Ctime = now, now
		fs.tableDelete(id)
		unlock()
		return nil
	}
}

// isAncestor reports whether anc lies on the parent chain of id
// (inclusive). Callers moving directories across directories hold
// renameMu, which freezes every parent pointer in the filesystem.
func (fs *FS) isAncestor(anc, id uint64) bool {
	for depth := 0; depth < 4096; depth++ {
		if id == anc {
			return true
		}
		if id == fs.root || id == 0 {
			return false
		}
		ino, err := fs.get(id)
		if err != nil {
			return false
		}
		id = ino.parent
	}
	return true // parent chain too deep to trust: refuse the move
}

// Rename moves fromName in fromDir to toName in toDir, replacing any
// existing non-directory target, as rename(2) does. Renaming a
// directory into its own subtree fails with ErrInval; renaming an entry
// onto itself is a successful no-op.
func (fs *FS) Rename(fromDir uint64, fromName string, toDir uint64, toName string) error {
	if err := fs.checkName(toName); err != nil {
		return err
	}
	if fromDir == toDir && fromName == toName {
		// rename("a", "a"): succeed without touching anything — the
		// replace path below would unlink the entry's own inode and
		// double-touch times.
		_, ok, err := fs.peekChild(fromDir, fromName)
		if err != nil {
			return err
		}
		if !ok {
			return ErrNotFound
		}
		return nil
	}
	crossDir := fromDir != toDir
	if crossDir {
		fs.renameMu.Lock()
		defer fs.renameMu.Unlock()
	}
	for {
		id, ok, err := fs.peekChild(fromDir, fromName)
		if err != nil {
			return err
		}
		if !ok {
			return ErrNotFound
		}
		victim, hasVictim, err := fs.peekChild(toDir, toName)
		if err != nil {
			return err
		}
		ids := []uint64{fromDir, toDir, id}
		if hasVictim {
			ids = append(ids, victim)
		}
		unlock := fs.lockIDs(ids...)
		fd, err := fs.get(fromDir)
		if err != nil {
			unlock()
			return err
		}
		td, err := fs.get(toDir)
		if err != nil {
			unlock()
			return err
		}
		vid, vok := td.children[toName]
		if fd.children[fromName] != id || vok != hasVictim || (vok && vid != victim) {
			unlock()
			continue // entries moved between peek and lock: retry
		}
		ino, err := fs.get(id)
		if err != nil {
			unlock()
			return err
		}
		if ino.Type == nfs.TypeDir && crossDir && fs.isAncestor(id, toDir) {
			// Moving /a to /a/b/c would orphan the subtree behind a
			// parent-pointer cycle.
			unlock()
			return ErrInval
		}
		if hasVictim {
			old, err := fs.get(victim)
			if err == nil {
				if old.Type == nfs.TypeDir {
					if len(old.children) != 0 {
						unlock()
						return ErrNotEmpty
					}
					td.Nlink--
					fs.tableDelete(victim)
				} else {
					old.Nlink--
					if old.Nlink == 0 {
						fs.chargeUser(old.UID, -int64(old.Used()))
						fs.tableDelete(victim)
					}
				}
			}
		}
		now := fs.Clock()
		delete(fd.children, fromName)
		td.children[toName] = id
		ino.name = toName
		if crossDir {
			// Parent pointers change only under renameMu, which keeps
			// concurrent ancestor walks race-free.
			ino.parent = toDir
		}
		ino.Ctime = now
		if ino.Type == nfs.TypeDir && crossDir {
			fd.Nlink--
			td.Nlink++
		}
		fd.Mtime, fd.Ctime = now, now
		td.Mtime, td.Ctime = now, now
		unlock()
		return nil
	}
}

// Link makes a hard link to target under dir.
func (fs *FS) Link(target uint64, dir uint64, name string) error {
	if err := fs.checkName(name); err != nil {
		return err
	}
	unlock := fs.lockIDs(target, dir)
	defer unlock()
	ino, err := fs.get(target)
	if err != nil {
		return err
	}
	if ino.Type == nfs.TypeDir {
		return ErrIsDir
	}
	d, err := fs.get(dir)
	if err != nil {
		return err
	}
	if d.Type != nfs.TypeDir {
		return ErrNotDir
	}
	if _, exists := d.children[name]; exists {
		return ErrExist
	}
	now := fs.Clock()
	d.children[name] = target
	ino.Nlink++
	ino.Ctime = now
	d.Mtime, d.Ctime = now, now
	return nil
}

// Write extends or overwrites [offset, offset+count) of a regular file,
// updating size, usage, and times; extensions are charged against the
// owner's quota. It returns the previous size so the server can build
// wcc data and the block-lifetime analysis can see extensions.
func (fs *FS) Write(id uint64, offset, count uint64) (prevSize uint64, err error) {
	sh := fs.shardOf(id)
	sh.Lock()
	defer sh.Unlock()
	ino, err := fs.get(id)
	if err != nil {
		return 0, err
	}
	if ino.Type == nfs.TypeDir {
		return 0, ErrIsDir
	}
	prevSize = ino.Size
	end := offset + count
	if end < offset {
		// uint64 wrap: an extension must not be mistaken for a no-op.
		return prevSize, ErrInval
	}
	if end > MaxFileSize {
		return prevSize, ErrTooBig
	}
	if end > ino.Size {
		newUsed := (end + BlockSize - 1) / BlockSize * BlockSize
		delta := int64(newUsed) - int64(ino.Used())
		if err := fs.chargeQuota(ino.UID, delta); err != nil {
			return prevSize, err
		}
		ino.Size = end
	}
	now := fs.Clock()
	ino.Mtime, ino.Ctime = now, now
	return prevSize, nil
}

// Read checks a read range and updates atime, returning the number of
// bytes available from offset (0 at or past EOF) and whether the read
// reaches EOF.
func (fs *FS) Read(id uint64, offset, count uint64) (n uint64, eof bool, err error) {
	sh := fs.shardOf(id)
	sh.Lock()
	defer sh.Unlock()
	ino, err := fs.get(id)
	if err != nil {
		return 0, false, err
	}
	if ino.Type == nfs.TypeDir {
		return 0, false, ErrIsDir
	}
	if offset+count < offset {
		return 0, false, ErrInval
	}
	ino.Atime = fs.Clock()
	if offset >= ino.Size {
		return 0, true, nil
	}
	n = ino.Size - offset
	if n > count {
		n = count
	}
	return n, offset+n >= ino.Size, nil
}

// truncateLocked implements Truncate under the inode's shard write lock.
func (fs *FS) truncateLocked(ino *Inode, size uint64) error {
	if ino.Type == nfs.TypeDir {
		return ErrIsDir
	}
	if size > MaxFileSize {
		return ErrTooBig
	}
	newUsed := (size + BlockSize - 1) / BlockSize * BlockSize
	delta := int64(newUsed) - int64(ino.Used())
	if err := fs.chargeQuota(ino.UID, delta); err != nil {
		return err
	}
	ino.Size = size
	now := fs.Clock()
	ino.Mtime, ino.Ctime = now, now
	return nil
}

// Truncate sets a regular file's size, releasing or charging usage. It
// returns the previous size.
func (fs *FS) Truncate(id uint64, size uint64) (prevSize uint64, err error) {
	sh := fs.shardOf(id)
	sh.Lock()
	defer sh.Unlock()
	ino, err := fs.get(id)
	if err != nil {
		return 0, err
	}
	prevSize = ino.Size
	if err := fs.truncateLocked(ino, size); err != nil {
		return prevSize, err
	}
	return prevSize, nil
}

// Setattr atomically applies the non-nil attribute changes under the
// inode's shard lock and returns the pre-operation wcc snapshot plus
// the post-operation attributes, as the SETATTR procedure needs. A
// failed truncate still reports before/after for wcc_data.
func (fs *FS) Setattr(id uint64, size *uint64, mode, uid, gid *uint32) (before *nfs.WccAttr, after *nfs.Fattr, err error) {
	sh := fs.shardOf(id)
	sh.Lock()
	defer sh.Unlock()
	ino, err := fs.get(id)
	if err != nil {
		return nil, nil, err
	}
	before = &nfs.WccAttr{Size: ino.Size,
		Mtime: nfs.TimeFromSeconds(ino.Mtime), Ctime: nfs.TimeFromSeconds(ino.Ctime)}
	if size != nil {
		if err := fs.truncateLocked(ino, *size); err != nil {
			return before, fs.attrLocked(ino), err
		}
	}
	if mode != nil {
		ino.Mode = *mode
	}
	if uid != nil {
		ino.UID = *uid
	}
	if gid != nil {
		ino.GID = *gid
	}
	return before, fs.attrLocked(ino), nil
}

// Readdir lists a directory in deterministic (sorted) order starting
// after the given cookie (0 = start). It returns at most max entries
// (0 = all) and whether the listing is complete.
func (fs *FS) Readdir(id uint64, cookie uint64, max int) ([]nfs.DirEntry, bool, error) {
	sh := fs.shardOf(id)
	sh.Lock()
	defer sh.Unlock()
	d, err := fs.get(id)
	if err != nil {
		return nil, false, err
	}
	if d.Type != nfs.TypeDir {
		return nil, false, ErrNotDir
	}
	d.Atime = fs.Clock()
	names := make([]string, 0, len(d.children))
	for name := range d.children {
		names = append(names, name)
	}
	sort.Strings(names)
	var entries []nfs.DirEntry
	for i, name := range names {
		ck := uint64(i + 1)
		if ck <= cookie {
			continue
		}
		entries = append(entries, nfs.DirEntry{FileID: d.children[name], Name: name, Cookie: ck})
		if max > 0 && len(entries) >= max {
			return entries, i == len(names)-1, nil
		}
	}
	return entries, true, nil
}

// attrLocked builds the attribute block; the caller holds the inode's
// shard lock (either mode).
func (fs *FS) attrLocked(ino *Inode) *nfs.Fattr {
	return &nfs.Fattr{
		Type: ino.Type, Mode: ino.Mode, Nlink: ino.Nlink,
		UID: ino.UID, GID: ino.GID,
		Size: ino.Size, Used: ino.Used(),
		FSID: 1, FileID: ino.ID,
		Atime: nfs.TimeFromSeconds(ino.Atime),
		Mtime: nfs.TimeFromSeconds(ino.Mtime),
		Ctime: nfs.TimeFromSeconds(ino.Ctime),
	}
}

// Attr builds the NFS attribute block for an inode, snapshotting its
// fields under the shard read lock.
func (fs *FS) Attr(ino *Inode) *nfs.Fattr {
	sh := fs.shardOf(ino.ID)
	sh.RLock()
	defer sh.RUnlock()
	return fs.attrLocked(ino)
}

// Wcc snapshots the pre-operation attributes used for v3 wcc_data.
func (fs *FS) Wcc(ino *Inode) *nfs.WccAttr {
	sh := fs.shardOf(ino.ID)
	sh.RLock()
	defer sh.RUnlock()
	return &nfs.WccAttr{Size: ino.Size,
		Mtime: nfs.TimeFromSeconds(ino.Mtime), Ctime: nfs.TimeFromSeconds(ino.Ctime)}
}

// Path reconstructs the path of an inode from parent pointers, for
// debugging and the filename analyses. Each step locks one inode, so
// the result is a best-effort snapshot under concurrent renames.
func (fs *FS) Path(id uint64) string {
	var parts []string
	for id != fs.root {
		sh := fs.shardOf(id)
		sh.RLock()
		ino, err := fs.get(id)
		if err != nil {
			sh.RUnlock()
			return "?" + path.Join(append([]string{"/"}, parts...)...)
		}
		name, parent := ino.name, ino.parent
		sh.RUnlock()
		parts = append([]string{name}, parts...)
		id = parent
		if len(parts) > 64 {
			break
		}
	}
	return "/" + strings.Join(parts, "/")
}

// MkdirAll creates every directory of a /-separated path, returning the
// final directory's inode. Concurrent MkdirAll calls on overlapping
// paths cooperate: losing a create race falls back to lookup.
func (fs *FS) MkdirAll(p string, uid, gid uint32) (*Inode, error) {
	cur := fs.root
	for _, part := range strings.Split(strings.Trim(p, "/"), "/") {
		if part == "" {
			continue
		}
		next, err := fs.Lookup(cur, part)
		if errors.Is(err, ErrNotFound) {
			next, err = fs.Mkdir(cur, part, uid, gid, 0755)
			if errors.Is(err, ErrExist) {
				next, err = fs.Lookup(cur, part)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("mkdirall %q at %q: %w", p, part, err)
		}
		cur = next.ID
	}
	return fs.get(cur)
}

// Usage reports a user's byte usage under quota accounting.
func (fs *FS) Usage(uid uint32) uint64 {
	fs.usageMu.Lock()
	defer fs.usageMu.Unlock()
	return fs.usage[uid]
}

// chargeQuota checks the quota and applies delta as one atomic step.
func (fs *FS) chargeQuota(uid uint32, delta int64) error {
	fs.usageMu.Lock()
	defer fs.usageMu.Unlock()
	if delta > 0 && fs.QuotaPerUID > 0 && fs.usage[uid]+uint64(delta) > fs.QuotaPerUID {
		return ErrQuota
	}
	fs.applyCharge(uid, delta)
	return nil
}

// chargeUser applies delta without a quota check (refunds, forced
// accounting moves).
func (fs *FS) chargeUser(uid uint32, delta int64) {
	fs.usageMu.Lock()
	fs.applyCharge(uid, delta)
	fs.usageMu.Unlock()
}

// applyCharge adjusts usage, clamping at zero; the caller holds usageMu.
func (fs *FS) applyCharge(uid uint32, delta int64) {
	if delta >= 0 {
		fs.usage[uid] += uint64(delta)
		return
	}
	dec := uint64(-delta)
	if fs.usage[uid] < dec {
		fs.usage[uid] = 0
		return
	}
	fs.usage[uid] -= dec
}

// TotalBytes reports the sum of all file sizes, for FSSTAT.
func (fs *FS) TotalBytes() uint64 {
	fs.mu.RLock()
	snapshot := make([]*Inode, 0, len(fs.inodes))
	for _, ino := range fs.inodes {
		snapshot = append(snapshot, ino)
	}
	fs.mu.RUnlock()
	var total uint64
	for _, ino := range snapshot {
		sh := fs.shardOf(ino.ID)
		sh.RLock()
		if ino.Type == nfs.TypeReg {
			total += ino.Size
		}
		sh.RUnlock()
	}
	return total
}
