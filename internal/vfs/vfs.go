// Package vfs provides the in-memory UNIX-like filesystem that backs the
// NFS server simulator: inodes with attributes, directories, file
// handles, quotas, and block accounting.
//
// File contents are not stored — only sizes — because the tracer and
// every analysis in the paper operate on operation streams and byte
// counts, never on data. Storing content for a simulated week of CAMPUS
// traffic (135 GB/day read) would be pointless and impossible in memory.
// Reads and writes therefore manipulate size and timestamps exactly as a
// real server would, and the server layer synthesizes payload filler
// when a byte-faithful packet is required.
package vfs

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"

	"repro/internal/nfs"
)

// Filesystem errors, mapped to NFS status codes by the server layer.
var (
	ErrNotFound    = errors.New("vfs: no such file or directory")
	ErrExist       = errors.New("vfs: file exists")
	ErrNotDir      = errors.New("vfs: not a directory")
	ErrIsDir       = errors.New("vfs: is a directory")
	ErrNotEmpty    = errors.New("vfs: directory not empty")
	ErrStale       = errors.New("vfs: stale file handle")
	ErrQuota       = errors.New("vfs: quota exceeded")
	ErrNameTooLong = errors.New("vfs: name too long")
)

// BlockSize is the filesystem block size used for Used accounting; the
// paper's analyses round to 8 KB blocks.
const BlockSize = 8192

// MaxNameLen bounds a single path component.
const MaxNameLen = 255

// Inode is one filesystem object.
type Inode struct {
	ID    uint64
	Type  uint32 // nfs.TypeReg, TypeDir, TypeLnk
	Mode  uint32
	Nlink uint32
	UID   uint32
	GID   uint32
	Size  uint64
	Atime float64 // seconds since trace epoch
	Mtime float64
	Ctime float64

	// children maps name → inode ID for directories.
	children map[string]uint64
	// parent is the containing directory (directories only, for path
	// reconstruction; hard links to files may have several parents and
	// we record the first).
	parent uint64
	// name is the name under parent (first link).
	name string
	// Target is the symlink target, if Type == TypeLnk.
	Target string
}

// Used reports the block-rounded space consumption.
func (ino *Inode) Used() uint64 {
	return (ino.Size + BlockSize - 1) / BlockSize * BlockSize
}

// FS is an in-memory filesystem with a single root.
type FS struct {
	inodes map[uint64]*Inode
	nextID uint64
	root   uint64

	// QuotaPerUID is the per-user byte quota (0 = unlimited); the
	// CAMPUS system gave each user 50 MB.
	QuotaPerUID uint64
	usage       map[uint32]uint64

	// Clock supplies "now" for timestamps, driven by the simulator.
	Clock func() float64
}

// New creates a filesystem with an empty root directory owned by root.
func New() *FS {
	fs := &FS{
		inodes: make(map[uint64]*Inode),
		nextID: 2, // inode 2 is the root, as in FFS
		usage:  make(map[uint32]uint64),
		Clock:  func() float64 { return 0 },
	}
	root := &Inode{
		ID: 2, Type: nfs.TypeDir, Mode: 0755, Nlink: 2,
		children: make(map[string]uint64),
	}
	fs.inodes[2] = root
	fs.root = 2
	fs.nextID = 3
	return fs
}

// Root returns the root directory's inode ID.
func (fs *FS) Root() uint64 { return fs.root }

// RootFH returns the root file handle.
func (fs *FS) RootFH() nfs.FH { return nfs.MakeFH(fs.root) }

// NumInodes reports the number of live inodes.
func (fs *FS) NumInodes() int { return len(fs.inodes) }

// Get resolves an inode by ID.
func (fs *FS) Get(id uint64) (*Inode, error) {
	ino := fs.inodes[id]
	if ino == nil {
		return nil, ErrStale
	}
	return ino, nil
}

// GetFH resolves an inode from a file handle.
func (fs *FS) GetFH(fh nfs.FH) (*Inode, error) {
	id, ok := fh.FileID()
	if !ok {
		return nil, ErrStale
	}
	return fs.Get(id)
}

// Lookup resolves name within directory dir.
func (fs *FS) Lookup(dir uint64, name string) (*Inode, error) {
	d, err := fs.Get(dir)
	if err != nil {
		return nil, err
	}
	if d.Type != nfs.TypeDir {
		return nil, ErrNotDir
	}
	switch name {
	case ".", "":
		return d, nil
	case "..":
		if d.parent == 0 {
			return d, nil
		}
		return fs.Get(d.parent)
	}
	id, ok := d.children[name]
	if !ok {
		return nil, ErrNotFound
	}
	return fs.Get(id)
}

func (fs *FS) checkName(name string) error {
	if len(name) > MaxNameLen {
		return ErrNameTooLong
	}
	if name == "" || name == "." || name == ".." || strings.ContainsRune(name, '/') {
		return ErrExist
	}
	return nil
}

// Create makes a regular file under dir. It fails if the name exists.
func (fs *FS) Create(dir uint64, name string, uid, gid, mode uint32) (*Inode, error) {
	if err := fs.checkName(name); err != nil {
		return nil, err
	}
	d, err := fs.Get(dir)
	if err != nil {
		return nil, err
	}
	if d.Type != nfs.TypeDir {
		return nil, ErrNotDir
	}
	if _, exists := d.children[name]; exists {
		return nil, ErrExist
	}
	now := fs.Clock()
	ino := &Inode{
		ID: fs.nextID, Type: nfs.TypeReg, Mode: mode, Nlink: 1,
		UID: uid, GID: gid,
		Atime: now, Mtime: now, Ctime: now,
		parent: dir, name: name,
	}
	fs.nextID++
	fs.inodes[ino.ID] = ino
	d.children[name] = ino.ID
	d.Mtime, d.Ctime = now, now
	return ino, nil
}

// Mkdir makes a directory under dir.
func (fs *FS) Mkdir(dir uint64, name string, uid, gid, mode uint32) (*Inode, error) {
	if err := fs.checkName(name); err != nil {
		return nil, err
	}
	d, err := fs.Get(dir)
	if err != nil {
		return nil, err
	}
	if d.Type != nfs.TypeDir {
		return nil, ErrNotDir
	}
	if _, exists := d.children[name]; exists {
		return nil, ErrExist
	}
	now := fs.Clock()
	ino := &Inode{
		ID: fs.nextID, Type: nfs.TypeDir, Mode: mode, Nlink: 2,
		UID: uid, GID: gid,
		Atime: now, Mtime: now, Ctime: now,
		children: make(map[string]uint64),
		parent:   dir, name: name,
	}
	fs.nextID++
	fs.inodes[ino.ID] = ino
	d.children[name] = ino.ID
	d.Nlink++
	d.Mtime, d.Ctime = now, now
	return ino, nil
}

// Symlink makes a symbolic link under dir.
func (fs *FS) Symlink(dir uint64, name, target string, uid, gid uint32) (*Inode, error) {
	ino, err := fs.Create(dir, name, uid, gid, 0777)
	if err != nil {
		return nil, err
	}
	ino.Type = nfs.TypeLnk
	ino.Target = target
	ino.Size = uint64(len(target))
	return ino, nil
}

// Remove unlinks a non-directory name from dir. The inode is freed when
// its link count reaches zero.
func (fs *FS) Remove(dir uint64, name string) error {
	d, err := fs.Get(dir)
	if err != nil {
		return err
	}
	id, ok := d.children[name]
	if !ok {
		return ErrNotFound
	}
	ino, err := fs.Get(id)
	if err != nil {
		return err
	}
	if ino.Type == nfs.TypeDir {
		return ErrIsDir
	}
	now := fs.Clock()
	delete(d.children, name)
	d.Mtime, d.Ctime = now, now
	ino.Nlink--
	ino.Ctime = now
	if ino.Nlink == 0 {
		fs.chargeUser(ino.UID, -int64(ino.Used()))
		delete(fs.inodes, id)
	}
	return nil
}

// Rmdir removes an empty directory.
func (fs *FS) Rmdir(dir uint64, name string) error {
	d, err := fs.Get(dir)
	if err != nil {
		return err
	}
	id, ok := d.children[name]
	if !ok {
		return ErrNotFound
	}
	ino, err := fs.Get(id)
	if err != nil {
		return err
	}
	if ino.Type != nfs.TypeDir {
		return ErrNotDir
	}
	if len(ino.children) != 0 {
		return ErrNotEmpty
	}
	now := fs.Clock()
	delete(d.children, name)
	d.Nlink--
	d.Mtime, d.Ctime = now, now
	delete(fs.inodes, id)
	return nil
}

// Rename moves fromName in fromDir to toName in toDir, replacing any
// existing non-directory target, as rename(2) does.
func (fs *FS) Rename(fromDir uint64, fromName string, toDir uint64, toName string) error {
	if err := fs.checkName(toName); err != nil {
		return err
	}
	fd, err := fs.Get(fromDir)
	if err != nil {
		return err
	}
	td, err := fs.Get(toDir)
	if err != nil {
		return err
	}
	id, ok := fd.children[fromName]
	if !ok {
		return ErrNotFound
	}
	ino, err := fs.Get(id)
	if err != nil {
		return err
	}
	if oldID, exists := td.children[toName]; exists {
		old, err := fs.Get(oldID)
		if err == nil {
			if old.Type == nfs.TypeDir {
				if len(old.children) != 0 {
					return ErrNotEmpty
				}
				td.Nlink--
				delete(fs.inodes, oldID)
			} else {
				old.Nlink--
				if old.Nlink == 0 {
					fs.chargeUser(old.UID, -int64(old.Used()))
					delete(fs.inodes, oldID)
				}
			}
		}
	}
	now := fs.Clock()
	delete(fd.children, fromName)
	td.children[toName] = id
	ino.parent, ino.name = toDir, toName
	ino.Ctime = now
	if ino.Type == nfs.TypeDir && fromDir != toDir {
		fd.Nlink--
		td.Nlink++
	}
	fd.Mtime, fd.Ctime = now, now
	td.Mtime, td.Ctime = now, now
	return nil
}

// Link makes a hard link to target under dir.
func (fs *FS) Link(target uint64, dir uint64, name string) error {
	if err := fs.checkName(name); err != nil {
		return err
	}
	ino, err := fs.Get(target)
	if err != nil {
		return err
	}
	if ino.Type == nfs.TypeDir {
		return ErrIsDir
	}
	d, err := fs.Get(dir)
	if err != nil {
		return err
	}
	if _, exists := d.children[name]; exists {
		return ErrExist
	}
	now := fs.Clock()
	d.children[name] = target
	ino.Nlink++
	ino.Ctime = now
	d.Mtime, d.Ctime = now, now
	return nil
}

// Write extends or overwrites [offset, offset+count) of a regular file,
// updating size, usage, and times. It returns the previous size so the
// server can build wcc data and the block-lifetime analysis can see
// extensions.
func (fs *FS) Write(id uint64, offset, count uint64, uid uint32) (prevSize uint64, err error) {
	ino, err := fs.Get(id)
	if err != nil {
		return 0, err
	}
	if ino.Type == nfs.TypeDir {
		return 0, ErrIsDir
	}
	prevSize = ino.Size
	end := offset + count
	if end > ino.Size {
		newUsed := (end + BlockSize - 1) / BlockSize * BlockSize
		delta := int64(newUsed) - int64(ino.Used())
		if fs.QuotaPerUID > 0 && delta > 0 {
			if fs.usage[ino.UID]+uint64(delta) > fs.QuotaPerUID {
				return prevSize, ErrQuota
			}
		}
		fs.chargeUser(ino.UID, delta)
		ino.Size = end
	}
	now := fs.Clock()
	ino.Mtime, ino.Ctime = now, now
	return prevSize, nil
}

// Read checks a read range and updates atime, returning the number of
// bytes available from offset (0 at or past EOF) and whether the read
// reaches EOF.
func (fs *FS) Read(id uint64, offset, count uint64) (n uint64, eof bool, err error) {
	ino, err := fs.Get(id)
	if err != nil {
		return 0, false, err
	}
	if ino.Type == nfs.TypeDir {
		return 0, false, ErrIsDir
	}
	ino.Atime = fs.Clock()
	if offset >= ino.Size {
		return 0, true, nil
	}
	n = ino.Size - offset
	if n > count {
		n = count
	}
	return n, offset+n >= ino.Size, nil
}

// Truncate sets a regular file's size, releasing or charging usage. It
// returns the previous size.
func (fs *FS) Truncate(id uint64, size uint64) (prevSize uint64, err error) {
	ino, err := fs.Get(id)
	if err != nil {
		return 0, err
	}
	if ino.Type == nfs.TypeDir {
		return 0, ErrIsDir
	}
	prevSize = ino.Size
	newUsed := (size + BlockSize - 1) / BlockSize * BlockSize
	delta := int64(newUsed) - int64(ino.Used())
	if fs.QuotaPerUID > 0 && delta > 0 && fs.usage[ino.UID]+uint64(delta) > fs.QuotaPerUID {
		return prevSize, ErrQuota
	}
	fs.chargeUser(ino.UID, delta)
	ino.Size = size
	now := fs.Clock()
	ino.Mtime, ino.Ctime = now, now
	return prevSize, nil
}

// Readdir lists a directory in deterministic (sorted) order starting
// after the given cookie (0 = start). It returns at most max entries
// (0 = all) and whether the listing is complete.
func (fs *FS) Readdir(id uint64, cookie uint64, max int) ([]nfs.DirEntry, bool, error) {
	d, err := fs.Get(id)
	if err != nil {
		return nil, false, err
	}
	if d.Type != nfs.TypeDir {
		return nil, false, ErrNotDir
	}
	d.Atime = fs.Clock()
	names := make([]string, 0, len(d.children))
	for name := range d.children {
		names = append(names, name)
	}
	sort.Strings(names)
	var entries []nfs.DirEntry
	for i, name := range names {
		ck := uint64(i + 1)
		if ck <= cookie {
			continue
		}
		entries = append(entries, nfs.DirEntry{FileID: d.children[name], Name: name, Cookie: ck})
		if max > 0 && len(entries) >= max {
			return entries, i == len(names)-1, nil
		}
	}
	return entries, true, nil
}

// Attr builds the NFS attribute block for an inode.
func (fs *FS) Attr(ino *Inode) *nfs.Fattr {
	return &nfs.Fattr{
		Type: ino.Type, Mode: ino.Mode, Nlink: ino.Nlink,
		UID: ino.UID, GID: ino.GID,
		Size: ino.Size, Used: ino.Used(),
		FSID: 1, FileID: ino.ID,
		Atime: nfs.TimeFromSeconds(ino.Atime),
		Mtime: nfs.TimeFromSeconds(ino.Mtime),
		Ctime: nfs.TimeFromSeconds(ino.Ctime),
	}
}

// Path reconstructs the path of an inode from parent pointers, for
// debugging and the filename analyses.
func (fs *FS) Path(id uint64) string {
	var parts []string
	for id != fs.root {
		ino := fs.inodes[id]
		if ino == nil {
			return "?" + path.Join(append([]string{"/"}, parts...)...)
		}
		parts = append([]string{ino.name}, parts...)
		id = ino.parent
		if len(parts) > 64 {
			break
		}
	}
	return "/" + strings.Join(parts, "/")
}

// MkdirAll creates every directory of a /-separated path, returning the
// final directory's inode.
func (fs *FS) MkdirAll(p string, uid, gid uint32) (*Inode, error) {
	cur := fs.root
	for _, part := range strings.Split(strings.Trim(p, "/"), "/") {
		if part == "" {
			continue
		}
		next, err := fs.Lookup(cur, part)
		if errors.Is(err, ErrNotFound) {
			next, err = fs.Mkdir(cur, part, uid, gid, 0755)
		}
		if err != nil {
			return nil, fmt.Errorf("mkdirall %q at %q: %w", p, part, err)
		}
		cur = next.ID
	}
	return fs.Get(cur)
}

// Usage reports a user's byte usage under quota accounting.
func (fs *FS) Usage(uid uint32) uint64 { return fs.usage[uid] }

func (fs *FS) chargeUser(uid uint32, delta int64) {
	if delta >= 0 {
		fs.usage[uid] += uint64(delta)
		return
	}
	dec := uint64(-delta)
	if fs.usage[uid] < dec {
		fs.usage[uid] = 0
		return
	}
	fs.usage[uid] -= dec
}

// TotalBytes reports the sum of all file sizes, for FSSTAT.
func (fs *FS) TotalBytes() uint64 {
	var total uint64
	for _, ino := range fs.inodes {
		if ino.Type == nfs.TypeReg {
			total += ino.Size
		}
	}
	return total
}
