package vfs

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/nfs"
)

func newFS() *FS {
	fs := New()
	now := 0.0
	fs.Clock = func() float64 { now += 0.001; return now }
	return fs
}

func TestCreateLookup(t *testing.T) {
	fs := newFS()
	f, err := fs.Create(fs.Root(), "inbox", 501, 100, 0644)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs.Lookup(fs.Root(), "inbox")
	if err != nil || got.ID != f.ID {
		t.Fatalf("lookup: %v %v", got, err)
	}
	if got.UID != 501 || got.GID != 100 || got.Type != nfs.TypeReg {
		t.Fatalf("attrs: %+v", got)
	}
	if _, err := fs.Lookup(fs.Root(), "absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("lookup absent: %v", err)
	}
}

func TestCreateDuplicate(t *testing.T) {
	fs := newFS()
	if _, err := fs.Create(fs.Root(), "f", 0, 0, 0644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create(fs.Root(), "f", 0, 0, 0644); !errors.Is(err, ErrExist) {
		t.Fatalf("duplicate create: %v", err)
	}
}

func TestCreateBadNames(t *testing.T) {
	fs := newFS()
	for _, name := range []string{"", ".", "..", "a/b"} {
		if _, err := fs.Create(fs.Root(), name, 0, 0, 0644); err == nil {
			t.Errorf("created %q", name)
		}
	}
	long := make([]byte, MaxNameLen+1)
	for i := range long {
		long[i] = 'x'
	}
	if _, err := fs.Create(fs.Root(), string(long), 0, 0, 0644); !errors.Is(err, ErrNameTooLong) {
		t.Errorf("long name: %v", err)
	}
}

func TestDotAndDotDot(t *testing.T) {
	fs := newFS()
	d, _ := fs.Mkdir(fs.Root(), "home", 0, 0, 0755)
	sub, _ := fs.Mkdir(d.ID, "user1", 0, 0, 0755)
	self, err := fs.Lookup(sub.ID, ".")
	if err != nil || self.ID != sub.ID {
		t.Fatalf("dot: %v %v", self, err)
	}
	up, err := fs.Lookup(sub.ID, "..")
	if err != nil || up.ID != d.ID {
		t.Fatalf("dotdot: %v %v", up, err)
	}
	rootUp, err := fs.Lookup(fs.Root(), "..")
	if err != nil || rootUp.ID != fs.Root() {
		t.Fatalf("root dotdot: %v %v", rootUp, err)
	}
}

func TestWriteExtendsAndCharges(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create(fs.Root(), "mbox", 501, 100, 0644)
	prev, err := fs.Write(f.ID, 0, 5000)
	if err != nil || prev != 0 {
		t.Fatalf("write: prev=%d err=%v", prev, err)
	}
	if f.Size != 5000 {
		t.Fatalf("size = %d", f.Size)
	}
	if fs.Usage(501) != BlockSize {
		t.Fatalf("usage = %d, want one block", fs.Usage(501))
	}
	// Overwrite within the file: size unchanged.
	prev, err = fs.Write(f.ID, 1000, 1000)
	if err != nil || prev != 5000 || f.Size != 5000 {
		t.Fatalf("overwrite: prev=%d size=%d err=%v", prev, f.Size, err)
	}
	// Append extends.
	if _, err := fs.Write(f.ID, 5000, 20000); err != nil {
		t.Fatal(err)
	}
	if f.Size != 25000 {
		t.Fatalf("size after append = %d", f.Size)
	}
	if fs.Usage(501) != 4*BlockSize {
		t.Fatalf("usage = %d, want 4 blocks", fs.Usage(501))
	}
}

func TestQuotaEnforced(t *testing.T) {
	fs := newFS()
	fs.QuotaPerUID = 50 << 20 // CAMPUS default: 50MB
	f, _ := fs.Create(fs.Root(), "big", 501, 100, 0644)
	if _, err := fs.Write(f.ID, 0, 49<<20); err != nil {
		t.Fatalf("write under quota: %v", err)
	}
	if _, err := fs.Write(f.ID, 49<<20, 2<<20); !errors.Is(err, ErrQuota) {
		t.Fatalf("write over quota: %v", err)
	}
	// Freeing space by truncation allows writing again.
	if _, err := fs.Truncate(f.ID, 1<<20); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write(f.ID, 1<<20, 1<<20); err != nil {
		t.Fatalf("write after truncate: %v", err)
	}
}

func TestReadSemantics(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create(fs.Root(), "f", 0, 0, 0644)
	fs.Write(f.ID, 0, 10000)
	n, eof, err := fs.Read(f.ID, 0, 8192)
	if err != nil || n != 8192 || eof {
		t.Fatalf("read1: n=%d eof=%v err=%v", n, eof, err)
	}
	n, eof, err = fs.Read(f.ID, 8192, 8192)
	if err != nil || n != 1808 || !eof {
		t.Fatalf("read2: n=%d eof=%v err=%v", n, eof, err)
	}
	n, eof, err = fs.Read(f.ID, 20000, 8192)
	if err != nil || n != 0 || !eof {
		t.Fatalf("read past eof: n=%d eof=%v err=%v", n, eof, err)
	}
}

func TestTruncateLifecycle(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create(fs.Root(), "f", 7, 7, 0644)
	fs.Write(f.ID, 0, 100000)
	usage := fs.Usage(7)
	prev, err := fs.Truncate(f.ID, 0)
	if err != nil || prev != 100000 {
		t.Fatalf("truncate: prev=%d err=%v", prev, err)
	}
	if fs.Usage(7) >= usage {
		t.Fatalf("usage not released: %d", fs.Usage(7))
	}
	if f.Size != 0 {
		t.Fatalf("size = %d", f.Size)
	}
}

func TestRemoveFreesInode(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create(fs.Root(), "scratch", 3, 3, 0644)
	fs.Write(f.ID, 0, 8192)
	n := fs.NumInodes()
	if err := fs.Remove(fs.Root(), "scratch"); err != nil {
		t.Fatal(err)
	}
	if fs.NumInodes() != n-1 {
		t.Fatalf("inodes = %d, want %d", fs.NumInodes(), n-1)
	}
	if fs.Usage(3) != 0 {
		t.Fatalf("usage = %d", fs.Usage(3))
	}
	if _, err := fs.Get(f.ID); !errors.Is(err, ErrStale) {
		t.Fatalf("stale get: %v", err)
	}
	if err := fs.Remove(fs.Root(), "scratch"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestRemoveDirectoryFails(t *testing.T) {
	fs := newFS()
	fs.Mkdir(fs.Root(), "d", 0, 0, 0755)
	if err := fs.Remove(fs.Root(), "d"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("remove dir: %v", err)
	}
}

func TestRmdir(t *testing.T) {
	fs := newFS()
	d, _ := fs.Mkdir(fs.Root(), "d", 0, 0, 0755)
	fs.Create(d.ID, "f", 0, 0, 0644)
	if err := fs.Rmdir(fs.Root(), "d"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("rmdir non-empty: %v", err)
	}
	fs.Remove(d.ID, "f")
	if err := fs.Rmdir(fs.Root(), "d"); err != nil {
		t.Fatalf("rmdir empty: %v", err)
	}
	if _, err := fs.Lookup(fs.Root(), "d"); !errors.Is(err, ErrNotFound) {
		t.Fatal("dir still visible")
	}
}

func TestHardLinks(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create(fs.Root(), "a", 0, 0, 0644)
	if err := fs.Link(f.ID, fs.Root(), "b"); err != nil {
		t.Fatal(err)
	}
	if f.Nlink != 2 {
		t.Fatalf("nlink = %d", f.Nlink)
	}
	if err := fs.Remove(fs.Root(), "a"); err != nil {
		t.Fatal(err)
	}
	// Still alive via b.
	if _, err := fs.Get(f.ID); err != nil {
		t.Fatalf("inode freed early: %v", err)
	}
	if err := fs.Remove(fs.Root(), "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Get(f.ID); !errors.Is(err, ErrStale) {
		t.Fatal("inode not freed")
	}
}

func TestRenameBasic(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create(fs.Root(), "old", 0, 0, 0644)
	if err := fs.Rename(fs.Root(), "old", fs.Root(), "new"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup(fs.Root(), "old"); !errors.Is(err, ErrNotFound) {
		t.Fatal("old name visible")
	}
	got, err := fs.Lookup(fs.Root(), "new")
	if err != nil || got.ID != f.ID {
		t.Fatalf("new name: %v %v", got, err)
	}
}

func TestRenameReplacesTarget(t *testing.T) {
	fs := newFS()
	fs.Create(fs.Root(), "src", 0, 0, 0644)
	victim, _ := fs.Create(fs.Root(), "dst", 0, 0, 0644)
	if err := fs.Rename(fs.Root(), "src", fs.Root(), "dst"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Get(victim.ID); !errors.Is(err, ErrStale) {
		t.Fatal("victim survived rename")
	}
}

func TestRenameAcrossDirs(t *testing.T) {
	fs := newFS()
	d1, _ := fs.Mkdir(fs.Root(), "d1", 0, 0, 0755)
	d2, _ := fs.Mkdir(fs.Root(), "d2", 0, 0, 0755)
	sub, _ := fs.Mkdir(d1.ID, "sub", 0, 0, 0755)
	if err := fs.Rename(d1.ID, "sub", d2.ID, "sub2"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Lookup(d2.ID, "sub2")
	if err != nil || got.ID != sub.ID {
		t.Fatalf("moved dir: %v %v", got, err)
	}
	// Directory nlink bookkeeping: d1 loses a child dir, d2 gains one.
	if d1.Nlink != 2 || d2.Nlink != 3 {
		t.Fatalf("nlinks: d1=%d d2=%d", d1.Nlink, d2.Nlink)
	}
}

func TestReaddirPagination(t *testing.T) {
	fs := newFS()
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for _, n := range names {
		fs.Create(fs.Root(), n, 0, 0, 0644)
	}
	var all []string
	cookie := uint64(0)
	for {
		entries, done, err := fs.Readdir(fs.Root(), cookie, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			all = append(all, e.Name)
			cookie = e.Cookie
		}
		if done {
			break
		}
	}
	if len(all) != 5 {
		t.Fatalf("entries = %v", all)
	}
	for i := 1; i < len(all); i++ {
		if all[i-1] >= all[i] {
			t.Fatalf("not sorted: %v", all)
		}
	}
}

func TestSymlink(t *testing.T) {
	fs := newFS()
	l, err := fs.Symlink(fs.Root(), "link", "/target/path", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.Type != nfs.TypeLnk || l.Target != "/target/path" || l.Size != 12 {
		t.Fatalf("symlink: %+v", l)
	}
}

func TestMkdirAllAndPath(t *testing.T) {
	fs := newFS()
	d, err := fs.MkdirAll("/home/user7/mail", 7, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := fs.Path(d.ID); got != "/home/user7/mail" {
		t.Fatalf("path = %q", got)
	}
	// Idempotent.
	d2, err := fs.MkdirAll("/home/user7/mail", 7, 7)
	if err != nil || d2.ID != d.ID {
		t.Fatalf("mkdirall again: %v %v", d2, err)
	}
}

func TestAttrReflectsInode(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create(fs.Root(), "f", 42, 43, 0600)
	fs.Write(f.ID, 0, 12345)
	a := fs.Attr(f)
	if a.Size != 12345 || a.UID != 42 || a.GID != 43 || a.Mode != 0600 || a.FileID != f.ID {
		t.Fatalf("attr: %+v", a)
	}
	if a.Used != 2*BlockSize {
		t.Fatalf("used = %d", a.Used)
	}
}

func TestTotalBytes(t *testing.T) {
	fs := newFS()
	a, _ := fs.Create(fs.Root(), "a", 0, 0, 0644)
	b, _ := fs.Create(fs.Root(), "b", 0, 0, 0644)
	fs.Write(a.ID, 0, 100)
	fs.Write(b.ID, 0, 200)
	if got := fs.TotalBytes(); got != 300 {
		t.Fatalf("total = %d", got)
	}
}

func TestUsageNeverNegative(t *testing.T) {
	f := func(sizes []uint16) bool {
		fs := newFS()
		ino, _ := fs.Create(fs.Root(), "f", 1, 1, 0644)
		for _, s := range sizes {
			fs.Truncate(ino.ID, uint64(s))
		}
		fs.Truncate(ino.ID, 0)
		return fs.Usage(1) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLookupOnFileFails(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create(fs.Root(), "f", 0, 0, 0644)
	if _, err := fs.Lookup(f.ID, "x"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("lookup on file: %v", err)
	}
	if _, _, err := fs.Readdir(f.ID, 0, 0); !errors.Is(err, ErrNotDir) {
		t.Fatalf("readdir on file: %v", err)
	}
}

func TestGetFHStale(t *testing.T) {
	fs := newFS()
	if _, err := fs.GetFH(nfs.MakeFH(99999)); !errors.Is(err, ErrStale) {
		t.Fatalf("stale fh: %v", err)
	}
	if _, err := fs.GetFH(nfs.FH{1, 2}); !errors.Is(err, ErrStale) {
		t.Fatalf("short fh: %v", err)
	}
	ino, err := fs.GetFH(fs.RootFH())
	if err != nil || ino.ID != fs.Root() {
		t.Fatalf("root fh: %v %v", ino, err)
	}
}
