package vfs

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/nfs"
)

// TestSymlinkChargesQuota pins the symlink accounting fix: the target
// length must be charged at create so the debit at Remove/Rename
// balances instead of silently underflowing the owner's usage.
func TestSymlinkChargesQuota(t *testing.T) {
	fs := newFS()
	if _, err := fs.Symlink(fs.Root(), "link", "/some/target", 501, 100); err != nil {
		t.Fatal(err)
	}
	if got := fs.Usage(501); got != BlockSize {
		t.Fatalf("usage after symlink = %d, want %d", got, BlockSize)
	}
	// The historic bug: removing the (uncharged) symlink debited Used()
	// and clamped at zero, wiping out charges for other files. With the
	// fix, an unrelated file's usage survives the symlink's lifecycle.
	f, _ := fs.Create(fs.Root(), "file", 501, 100, 0644)
	if _, err := fs.Write(f.ID, 0, 5000); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(fs.Root(), "link"); err != nil {
		t.Fatal(err)
	}
	if got := fs.Usage(501); got != BlockSize {
		t.Fatalf("usage after removing symlink = %d, want %d (file's block)", got, BlockSize)
	}
}

// TestSymlinkQuotaEnforced checks a symlink cannot blow past the quota
// and that a rejected symlink leaves no trace.
func TestSymlinkQuotaEnforced(t *testing.T) {
	fs := newFS()
	fs.QuotaPerUID = BlockSize
	if _, err := fs.Symlink(fs.Root(), "a", "/t", 7, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Symlink(fs.Root(), "b", "/t", 7, 7); !errors.Is(err, ErrQuota) {
		t.Fatalf("second symlink: %v, want ErrQuota", err)
	}
	if _, err := fs.Lookup(fs.Root(), "b"); !errors.Is(err, ErrNotFound) {
		t.Fatal("rejected symlink left an entry behind")
	}
	if got := fs.Usage(7); got != BlockSize {
		t.Fatalf("usage = %d, want %d", got, BlockSize)
	}
	checkInvariants(t, fs)
}

// TestWriteOffsetOverflow pins the uint64 wrap guard: offset+count
// wrapping past zero must be rejected, not treated as a no-op write.
func TestWriteOffsetOverflow(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create(fs.Root(), "f", 1, 1, 0644)
	fs.Write(f.ID, 0, 5000)
	prev, err := fs.Write(f.ID, math.MaxUint64-100, 200)
	if !errors.Is(err, ErrInval) {
		t.Fatalf("wrapping write: %v, want ErrInval", err)
	}
	if prev != 5000 || f.Size != 5000 {
		t.Fatalf("size disturbed: prev=%d size=%d", prev, f.Size)
	}
	if got := fs.Usage(1); got != BlockSize {
		t.Fatalf("usage disturbed: %d", got)
	}
	// Oversize without wrap is ErrTooBig.
	if _, err := fs.Write(f.ID, MaxFileSize, 1); !errors.Is(err, ErrTooBig) {
		t.Fatalf("oversize write: %v, want ErrTooBig", err)
	}
	// Boundary: ending exactly at MaxFileSize is legal (quota unlimited).
	if _, err := fs.Write(f.ID, MaxFileSize-8, 8); err != nil {
		t.Fatalf("boundary write: %v", err)
	}
	if f.Size != MaxFileSize {
		t.Fatalf("size = %d, want MaxFileSize", f.Size)
	}
}

// TestReadOffsetOverflow: a wrapping read range is invalid, not an EOF
// probe.
func TestReadOffsetOverflow(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create(fs.Root(), "f", 1, 1, 0644)
	fs.Write(f.ID, 0, 10000)
	if _, _, err := fs.Read(f.ID, math.MaxUint64-5, 100); !errors.Is(err, ErrInval) {
		t.Fatalf("wrapping read: %v, want ErrInval", err)
	}
	// A huge but non-wrapping count is fine and clamps to EOF.
	n, eof, err := fs.Read(f.ID, 4000, 1<<62)
	if err != nil || n != 6000 || !eof {
		t.Fatalf("big read: n=%d eof=%v err=%v", n, eof, err)
	}
}

// TestTruncateOverflow pins the size guard: a near-MaxUint64 size used
// to wrap the block rounding, refunding usage it never charged.
func TestTruncateOverflow(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create(fs.Root(), "f", 9, 9, 0644)
	fs.Write(f.ID, 0, 100000)
	usage := fs.Usage(9)
	if _, err := fs.Truncate(f.ID, math.MaxUint64); !errors.Is(err, ErrTooBig) {
		t.Fatalf("huge truncate: %v, want ErrTooBig", err)
	}
	if f.Size != 100000 || fs.Usage(9) != usage {
		t.Fatalf("truncate corrupted state: size=%d usage=%d", f.Size, fs.Usage(9))
	}
}

// TestRenameIntoOwnSubtree pins the cycle guard: moving a directory
// into its own subtree must fail instead of orphaning the tree behind
// a parent-pointer cycle.
func TestRenameIntoOwnSubtree(t *testing.T) {
	fs := newFS()
	a, _ := fs.Mkdir(fs.Root(), "a", 0, 0, 0755)
	b, _ := fs.Mkdir(a.ID, "b", 0, 0, 0755)
	c, _ := fs.Mkdir(b.ID, "c", 0, 0, 0755)
	// Direct: /a → /a/x.
	if err := fs.Rename(fs.Root(), "a", a.ID, "x"); !errors.Is(err, ErrInval) {
		t.Fatalf("rename into self: %v, want ErrInval", err)
	}
	// Deep: /a → /a/b/c/x.
	if err := fs.Rename(fs.Root(), "a", c.ID, "x"); !errors.Is(err, ErrInval) {
		t.Fatalf("rename into own subtree: %v, want ErrInval", err)
	}
	// The tree is untouched and acyclic.
	if got := fs.Path(c.ID); got != "/a/b/c" {
		t.Fatalf("path = %q", got)
	}
	// Legal moves still work: /a/b/c → /c2, then /a → /c2/a.
	if err := fs.Rename(b.ID, "c", fs.Root(), "c2"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(fs.Root(), "a", c.ID, "a"); err != nil {
		t.Fatal(err)
	}
	if got := fs.Path(b.ID); got != "/c2/a/b" {
		t.Fatalf("path after moves = %q", got)
	}
	checkInvariants(t, fs)
}

// TestRenameSelfNoop pins the self-rename fix: rename("a","a") must
// succeed without unlinking the file or touching any times (the old
// replace path decremented the inode's own link count and re-linked a
// freed inode).
func TestRenameSelfNoop(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create(fs.Root(), "a", 3, 3, 0644)
	root, _ := fs.Get(fs.Root())
	fCtime, dMtime := f.Ctime, root.Mtime
	if err := fs.Rename(fs.Root(), "a", fs.Root(), "a"); err != nil {
		t.Fatalf("self rename: %v", err)
	}
	got, err := fs.Lookup(fs.Root(), "a")
	if err != nil || got.ID != f.ID {
		t.Fatalf("entry gone after self rename: %v %v", got, err)
	}
	if f.Nlink != 1 {
		t.Fatalf("nlink = %d after self rename", f.Nlink)
	}
	if f.Ctime != fCtime || root.Mtime != dMtime {
		t.Fatal("self rename touched times")
	}
	if err := fs.Rename(fs.Root(), "missing", fs.Root(), "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("self rename of missing name: %v", err)
	}
	checkInvariants(t, fs)
}

// TestUsageInvariant runs randomized single-threaded op sequences —
// including the symlink and rename-replace paths that used to corrupt
// accounting — and asserts the per-UID usage ledger exactly matches the
// sum of live Used() after every sequence.
func TestUsageInvariant(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		fs := newFS()
		fs.QuotaPerUID = 256 * 1024
		rng := rand.New(rand.NewSource(seed))
		names := []string{"a", "b", "c", "d", "e", "f"}
		for i := 0; i < 2000; i++ {
			name := names[rng.Intn(len(names))]
			uid := uint32(100 + rng.Intn(3))
			switch rng.Intn(7) {
			case 0:
				fs.Create(fs.Root(), name, uid, uid, 0644)
			case 1:
				fs.Symlink(fs.Root(), name, "/target/of/some/length", uid, uid)
			case 2:
				if ino, err := fs.Lookup(fs.Root(), name); err == nil && ino.Type == nfs.TypeReg {
					fs.Write(ino.ID, uint64(rng.Intn(4))*BlockSize, uint64(rng.Intn(3*BlockSize)))
				}
			case 3:
				if ino, err := fs.Lookup(fs.Root(), name); err == nil && ino.Type == nfs.TypeReg {
					fs.Truncate(ino.ID, uint64(rng.Intn(4*BlockSize)))
				}
			case 4:
				fs.Remove(fs.Root(), name)
			case 5:
				fs.Rename(fs.Root(), name, fs.Root(), names[rng.Intn(len(names))])
			case 6:
				if ino, err := fs.Lookup(fs.Root(), name); err == nil && ino.Type != nfs.TypeDir {
					fs.Link(ino.ID, fs.Root(), name+"-ln")
				}
			}
		}
		checkInvariants(t, fs)
	}
}
