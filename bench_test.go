package repro

// The benchmark harness: one benchmark per paper table and figure (the
// regeneration cost over a fixed trace), the side experiments, and the
// ablations called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Benchmarks share one small generated trace pair (build cost excluded
// from timings via b.ResetTimer; generation itself is measured by
// BenchmarkGenerateCampus / BenchmarkGenerateEECS).

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/anon"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/server"
	"repro/internal/workload"
)

var (
	benchOnce   sync.Once
	benchCampus *Trace
	benchEECS   *Trace
)

func benchTraces(b *testing.B) (*Trace, *Trace) {
	b.Helper()
	benchOnce.Do(func() {
		s := SmallScale()
		s.Days = 2
		benchCampus = GenerateCampus(s)
		benchEECS = GenerateEECS(s)
	})
	return benchCampus, benchEECS
}

func benchExperiment(b *testing.B, fn func(*Trace, *Trace) string) {
	campus, eecs := benchTraces(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := fn(campus, eecs); len(out) == 0 {
			b.Fatal("empty experiment output")
		}
	}
}

func BenchmarkTable1(b *testing.B)  { benchExperiment(b, Table1) }
func BenchmarkTable2(b *testing.B)  { benchExperiment(b, Table2) }
func BenchmarkTable3(b *testing.B)  { benchExperiment(b, Table3) }
func BenchmarkTable4(b *testing.B)  { benchExperiment(b, Table4) }
func BenchmarkTable5(b *testing.B)  { benchExperiment(b, Table5) }
func BenchmarkFigure1(b *testing.B) { benchExperiment(b, Figure1) }
func BenchmarkFigure2(b *testing.B) { benchExperiment(b, Figure2) }
func BenchmarkFigure3(b *testing.B) { benchExperiment(b, Figure3) }
func BenchmarkFigure4(b *testing.B) { benchExperiment(b, Figure4) }
func BenchmarkFigure5(b *testing.B) { benchExperiment(b, Figure5) }

func BenchmarkExpNfsiod(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := ExpNfsiod(); len(out) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkExpNames(b *testing.B) {
	campus, _ := benchTraces(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := ExpNames(campus); len(out) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkExpReadahead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := ExpReadahead(); len(out) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkExpLoss times the §4.1.4 loss-estimation report. The lossy
// and clean traces are generated once, outside the timed loop — the
// benchmark measures the analysis, not the workload generator.
func BenchmarkExpLoss(b *testing.B) {
	s := SmallScale()
	s.Days = 0.25
	lossy, port := GenerateCampusLossy(s, 120e3)
	clean := GenerateCampus(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := expLossReport(lossy, port, clean); len(out) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkExpHierarchy(b *testing.B) {
	campus, _ := benchTraces(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := ExpHierarchy(campus); len(out) == 0 {
			b.Fatal("empty")
		}
	}
}

// --- Trace generation cost ---

func BenchmarkGenerateCampus(b *testing.B) {
	s := SmallScale()
	s.Days = 0.25
	var ops int
	for i := 0; i < b.N; i++ {
		tr := GenerateCampus(s)
		ops = len(tr.Ops)
	}
	b.ReportMetric(float64(ops), "ops/trace")
}

func BenchmarkGenerateEECS(b *testing.B) {
	s := SmallScale()
	s.Days = 0.25
	var ops int
	for i := 0; i < b.N; i++ {
		tr := GenerateEECS(s)
		ops = len(tr.Ops)
	}
	b.ReportMetric(float64(ops), "ops/trace")
}

// --- Ablations (DESIGN.md) ---

// BenchmarkAblationWindow compares run detection across reorder window
// sizes; the reported metric is the random-read percentage, which the
// window exists to repair.
func BenchmarkAblationWindow(b *testing.B) {
	campus, _ := benchTraces(b)
	for _, winMS := range []float64{0, 5, 10, 50} {
		name := map[float64]string{0: "w0ms", 5: "w5ms", 10: "w10ms", 50: "w50ms"}[winMS]
		b.Run(name, func(b *testing.B) {
			var randomPct float64
			for i := 0; i < b.N; i++ {
				tab := analysis.Tabulate(analysis.DetectRuns(campus.Ops,
					analysis.RunConfig{ReorderWindow: winMS / 1000, IdleGap: 30, JumpBlocks: 10}))
				randomPct = tab.Read[analysis.PatternRandom]
			}
			b.ReportMetric(randomPct, "%random-reads")
		})
	}
}

// BenchmarkAblationK compares the k=1 strict and k=10 jump-tolerant
// classifications.
func BenchmarkAblationK(b *testing.B) {
	campus, _ := benchTraces(b)
	for _, k := range []int64{1, 10} {
		name := map[int64]string{1: "k1", 10: "k10"}[k]
		b.Run(name, func(b *testing.B) {
			var randomPct float64
			for i := 0; i < b.N; i++ {
				tab := analysis.Tabulate(analysis.DetectRuns(campus.Ops,
					analysis.RunConfig{ReorderWindow: 0.010, IdleGap: 30, JumpBlocks: k}))
				randomPct = tab.Write[analysis.PatternRandom]
			}
			b.ReportMetric(randomPct, "%random-writes")
		})
	}
}

// BenchmarkAblationBreak compares run-break idle gaps (5s vs 30s vs
// none), reporting the run count each rule produces.
func BenchmarkAblationBreak(b *testing.B) {
	campus, _ := benchTraces(b)
	for _, gap := range []float64{5, 30, 0} {
		name := map[float64]string{5: "gap5s", 30: "gap30s", 0: "eof-only"}[gap]
		b.Run(name, func(b *testing.B) {
			var runs int
			for i := 0; i < b.N; i++ {
				rs := analysis.DetectRuns(campus.Ops,
					analysis.RunConfig{ReorderWindow: 0.010, IdleGap: gap, JumpBlocks: 10})
				runs = len(rs)
			}
			b.ReportMetric(float64(runs), "runs")
		})
	}
}

// BenchmarkAblationAnon compares the paper's table-based anonymizer
// against a hash-style deterministic mapping (which the paper rejects
// for security, not speed — this quantifies the cost of doing it right).
func BenchmarkAblationAnon(b *testing.B) {
	names := make([]string, 2000)
	rng := rand.New(rand.NewSource(1))
	for i := range names {
		names[i] = randomName(rng)
	}
	b.Run("table-based", func(b *testing.B) {
		a := anon.New(anon.DefaultConfig(1))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a.Name(names[i%len(names)])
		}
	})
	b.Run("hash-based", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fnvName(names[i%len(names)])
		}
	})
}

func randomName(rng *rand.Rand) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	n := 4 + rng.Intn(12)
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = letters[rng.Intn(len(letters))]
	}
	if rng.Intn(2) == 0 {
		return string(buf) + ".c"
	}
	return string(buf)
}

// fnvName is the rejected hash-based alternative.
func fnvName(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// --- Pipeline benchmarks ---

// BenchmarkPipelineWorkers measures the full analysis reducer suite
// (summary, hourly, raw+processed runs, block lifetimes) over the
// CAMPUS generator workload at 1, 4, and NumCPU workers — the
// before/after comparison for the sharded engine. The reported metric
// is analysis throughput in operations per second; output is
// byte-identical at every worker count (see
// TestTablesByteIdenticalAcrossWorkers).
func BenchmarkPipelineWorkers(b *testing.B) {
	campus, _ := benchTraces(b)
	span := campus.Days * workload.Day
	newSet := func() []pipeline.Analyzer {
		return []pipeline.Analyzer{
			&pipeline.SummaryAnalyzer{Days: campus.Days},
			&pipeline.HourlyAnalyzer{Span: span},
			&pipeline.RunsAnalyzer{Config: analysis.RunConfig{
				ReorderWindow: campus.ReorderWindowMS / 1000, IdleGap: 30, JumpBlocks: 1}},
			&pipeline.RunsAnalyzer{Config: analysis.DefaultRunConfig(campus.ReorderWindowMS)},
			&pipeline.BlockLifeAnalyzer{Start: workload.Day + 9*workload.Hour,
				Phase: workload.Day, Margin: workload.Day},
		}
	}
	counts := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			cfg := pipeline.Config{Workers: workers}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pipeline.RunSlice(cfg, campus.Ops, newSet()...)
			}
			b.StopTimer()
			b.ReportMetric(float64(len(campus.Ops))*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// BenchmarkJoin measures call/reply matching throughput.
func BenchmarkJoin(b *testing.B) {
	s := SmallScale()
	s.Days = 0.2
	records := GenerateCampusRecords(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ops, _ := core.Join(records)
		if len(ops) == 0 {
			b.Fatal("no ops")
		}
	}
	b.SetBytes(int64(len(records)))
}

// BenchmarkRecordMarshal measures trace-format serialization.
func BenchmarkRecordMarshal(b *testing.B) {
	rec := &core.Record{
		Time: 1003680000.004742, Kind: core.KindCall,
		Client: 0x0a000005, Port: 801, Server: 0x0a000001, Proto: core.ProtoUDP,
		XID: 0xa2f3, Version: 3, Proc: core.MustProc("read"),
		FH: core.InternFH("0000000000000007"), Offset: 8192, Count: 8192, UID: 501, GID: 100,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(rec.Marshal()) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkRecordUnmarshal measures trace-format parsing.
func BenchmarkRecordUnmarshal(b *testing.B) {
	rec := &core.Record{
		Time: 1003680000.004742, Kind: core.KindCall,
		Client: 0x0a000005, Port: 801, Server: 0x0a000001, Proto: core.ProtoUDP,
		XID: 0xa2f3, Version: 3, Proc: core.MustProc("read"),
		FH: core.InternFH("0000000000000007"), Offset: 8192, Count: 8192, UID: 501, GID: 100,
	}
	line := rec.Marshal()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.UnmarshalRecord(line); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadAheadPolicies measures the §6.4 read-path simulation.
func BenchmarkReadAheadPolicies(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	var reqs []server.ReadRequest
	for f := uint64(1); f <= 10; f++ {
		start := len(reqs)
		for bl := int64(0); bl < 256; bl++ {
			reqs = append(reqs, server.ReadRequest{File: f, Block: bl, NBlocks: 1})
		}
		for i := start; i < len(reqs)-1; i++ {
			if rng.Float64() < 0.10 {
				reqs[i], reqs[i+1] = reqs[i+1], reqs[i]
			}
		}
	}
	b.Run("strict", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			server.RunReadPath(reqs, server.NewStrictSequential(8), 2048)
		}
	})
	b.Run("metric", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			server.RunReadPath(reqs, server.NewMetricReadAhead(), 2048)
		}
	})
}

// BenchmarkNfsiodPool measures dispatch cost.
func BenchmarkNfsiodPool(b *testing.B) {
	p := client.NewPool(4, 1)
	t := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t += 0.0001
		p.Dispatch(t)
	}
}

// BenchmarkSortWindow measures the §4.2 reorder-window sort.
func BenchmarkSortWindow(b *testing.B) {
	campus, _ := benchTraces(b)
	files := analysis.FileAccesses(campus.Ops)
	var biggest []analysis.Access
	for _, accs := range files {
		if len(accs) > len(biggest) {
			biggest = accs
		}
	}
	cp := make([]analysis.Access, len(biggest))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(cp, biggest)
		analysis.SortWindow(cp, 0.010)
	}
	b.SetBytes(int64(len(biggest)))
}

// BenchmarkHourly measures the Figure 4 bucketing pass.
func BenchmarkHourly(b *testing.B) {
	campus, _ := benchTraces(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.Hourly(campus.Ops, campus.Days*workload.Day)
	}
	b.SetBytes(int64(len(campus.Ops)))
}

func BenchmarkExpNVRAM(b *testing.B) {
	campus, eecs := benchTraces(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := ExpNVRAM(campus, eecs); len(out) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkExpQuiet(b *testing.B) {
	campus, eecs := benchTraces(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := ExpQuiet(campus, eecs); len(out) == 0 {
			b.Fatal("empty")
		}
	}
}
