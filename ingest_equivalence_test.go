package repro

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/pipeline"
)

// This file is the end-to-end determinism guarantee for the parallel
// ingest front end, mirroring pipeline_equivalence_test.go one layer
// down: whatever the decoder count, however the trace set is cut into
// files, and whichever on-disk format (text, binary, gzip) carries it,
// every table and figure must render byte-identically to the serial
// single-file path.

// renderedExperiments renders Table1–Figure5 for a campus/eecs pair.
func renderedExperiments(campus, eecs *Trace) map[string]string {
	experiments := map[string]func(*Trace, *Trace) string{
		"Table1": Table1, "Table2": Table2, "Table3": Table3,
		"Table4": Table4, "Table5": Table5,
		"Figure1": Figure1, "Figure2": Figure2, "Figure3": Figure3,
		"Figure4": Figure4, "Figure5": Figure5,
	}
	out := make(map[string]string, len(experiments))
	for name, fn := range experiments {
		out[name] = fn(campus, eecs)
	}
	return out
}

// ingestTrace drains a record source into a Trace, as nfsanalyze does.
func ingestTrace(t *testing.T, src core.RecordSource, name string, days float64, reorderMS float64) *Trace {
	t.Helper()
	var records []*core.Record
	for {
		rec, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		records = append(records, rec)
	}
	ops, join := core.Join(records)
	return &Trace{Name: name, Ops: ops, Days: days, Join: join, ReorderWindowMS: reorderMS}
}

func writeFile(t *testing.T, path string, data []byte) string {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func textBytes(t *testing.T, records []*core.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := core.WriteAll(&buf, records); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func gzBytes(t *testing.T, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// openSet ingests a trace set into a Trace via the parallel front end.
func openSet(t *testing.T, paths []string, cfg core.IngestConfig, name string, days, reorderMS float64) *Trace {
	t.Helper()
	ts, err := pipeline.OpenTraceSet(paths, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	return ingestTrace(t, ts, name, days, reorderMS)
}

func TestParallelIngestByteIdenticalTables(t *testing.T) {
	scale := SmallScale()
	scale.Days = 0.25
	campusRecs := GenerateCampusRecords(scale)
	eecsRecs := GenerateEECSRecords(scale)
	dir := t.TempDir()

	campusText := textBytes(t, campusRecs)
	eecsText := textBytes(t, eecsRecs)
	campusPath := writeFile(t, filepath.Join(dir, "campus.trace"), campusText)
	eecsPath := writeFile(t, filepath.Join(dir, "eecs.trace"), eecsText)

	// Serial reference: the pre-existing one-goroutine reader.
	serialTrace := func(data []byte, name string, reorderMS float64) *Trace {
		src, err := core.DetectSource(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		return ingestTrace(t, src, name, scale.Days, reorderMS)
	}
	want := renderedExperiments(
		serialTrace(campusText, "CAMPUS", 10),
		serialTrace(eecsText, "EECS", 5))

	compare := func(label string, got map[string]string) {
		t.Helper()
		for name, w := range want {
			if got[name] != w {
				t.Errorf("%s: %s differs from the serial path:\n--- serial ---\n%s\n--- %s ---\n%s",
					label, name, w, label, got[name])
			}
		}
	}

	// Parallel ingest across the full decoder × worker grid, small
	// batches to force many splits: the rendered tables must be
	// byte-identical to the serial single-worker reference at every
	// combination, which pins down both the resequencer and the
	// ID-keyed reducers (handle intern IDs vary with decode
	// interleaving; output must not).
	for _, decoders := range []int{1, 2, 8} {
		for _, workers := range []int{1, 2, 8} {
			cfg := core.IngestConfig{Decoders: decoders, BatchBytes: 8 << 10}
			campusTr := openSet(t, []string{campusPath}, cfg, "CAMPUS", scale.Days, 10)
			eecsTr := openSet(t, []string{eecsPath}, cfg, "EECS", scale.Days, 5)
			campusTr.Pipeline = pipeline.Config{Workers: workers}
			eecsTr.Pipeline = pipeline.Config{Workers: workers}
			got := renderedExperiments(campusTr, eecsTr)
			compare(fmt.Sprintf("decoders=%d workers=%d", decoders, workers), got)
		}
	}

	// Multi-file trace set: the campus trace cut at its time midpoint
	// into two day-style files, the second gzipped; the k-way merge
	// must reproduce the exact stream.
	mid := (campusRecs[0].Time + campusRecs[len(campusRecs)-1].Time) / 2
	cut := 0
	for cut < len(campusRecs) && campusRecs[cut].Time < mid {
		cut++
	}
	partA := writeFile(t, filepath.Join(dir, "campus-day1.trace"), textBytes(t, campusRecs[:cut]))
	partB := writeFile(t, filepath.Join(dir, "campus-day2.trace.gz"),
		gzBytes(t, textBytes(t, campusRecs[cut:])))
	cfg := core.IngestConfig{Decoders: 2, BatchBytes: 8 << 10}
	got := renderedExperiments(
		openSet(t, []string{partA, partB}, cfg, "CAMPUS", scale.Days, 10),
		openSet(t, []string{eecsPath}, cfg, "EECS", scale.Days, 5))
	compare("multi-file set", got)
}

// TestParallelIngestBinaryByteIdentical covers the binary format: the
// reference is the serial binary reader over the same file (binary
// storage rounds times to the microsecond, so the text-path tables are
// not the comparison point).
func TestParallelIngestBinaryByteIdentical(t *testing.T) {
	scale := SmallScale()
	scale.Days = 0.25
	campusRecs := GenerateCampusRecords(scale)
	eecsRecs := GenerateEECSRecords(scale)
	dir := t.TempDir()

	binBytes := func(records []*core.Record) []byte {
		var buf bytes.Buffer
		w := core.NewBinaryWriter(&buf)
		for _, r := range records {
			if err := w.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	campusBin := binBytes(campusRecs)
	eecsBin := binBytes(eecsRecs)
	campusPath := writeFile(t, filepath.Join(dir, "campus.btrace"), campusBin)
	eecsPath := writeFile(t, filepath.Join(dir, "eecs.btrace"), eecsBin)

	serial := func(data []byte, name string, reorderMS float64) *Trace {
		src, err := core.DetectSource(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		return ingestTrace(t, src, name, scale.Days, reorderMS)
	}
	want := renderedExperiments(
		serial(campusBin, "CAMPUS", 10),
		serial(eecsBin, "EECS", 5))

	cfg := core.IngestConfig{Decoders: 4, BatchRecords: 256}
	got := renderedExperiments(
		openSet(t, []string{campusPath}, cfg, "CAMPUS", scale.Days, 10),
		openSet(t, []string{eecsPath}, cfg, "EECS", scale.Days, 5))
	for name, w := range want {
		if got[name] != w {
			t.Errorf("binary ingest: %s differs from the serial binary path", name)
		}
	}
}
